package filter

import (
	"sync"
	"sync/atomic"

	"encshare/internal/ring"
)

// polyCache is a bounded map from pre values to decoded server-share
// polynomials. Two properties matter on the hot path:
//
//   - Sharding: the cache is split into independently-locked segments
//     (pre values spread by a Fibonacci hash), so the batch worker pool
//     hitting the cache concurrently contends on 1/segments of the
//     keyspace instead of one global mutex.
//   - CLOCK eviction: each segment runs second-chance replacement. A
//     hit sets the entry's reference bit; the eviction hand clears bits
//     until it finds an unreferenced victim. Unlike the previous
//     evict-arbitrary-map-key policy, a scan of cold nodes can no
//     longer evict the hot entry every round — recently-referenced
//     entries survive a full hand sweep (see cache_test.go for the
//     hit-rate regression test).
//
// Cached polynomials are shared by reference with concurrent readers,
// so an evicted Poly must never be returned to a pool — eviction just
// drops the reference (see the pooling invariant in package ring).
type polyCache struct {
	segs []cacheSeg
	mask uint64

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheSeg struct {
	mu   sync.Mutex
	max  int
	data map[int64]*cacheEnt
	keys []int64 // CLOCK ring of resident keys
	hand int
}

type cacheEnt struct {
	p   ring.Poly
	ref bool // second-chance bit, guarded by the segment mutex
}

// cacheSegments picks a power-of-two segment count: enough to spread a
// worker pool, small enough that each segment still holds a useful
// number of entries.
func cacheSegments(max int) int {
	segs := 16
	for segs > 1 && max/segs < 8 {
		segs /= 2
	}
	return segs
}

func newPolyCache(max int) *polyCache {
	if max <= 0 {
		return &polyCache{} // disabled: no segments
	}
	segs := cacheSegments(max)
	c := &polyCache{segs: make([]cacheSeg, segs), mask: uint64(segs - 1)}
	per := (max + segs - 1) / segs
	for i := range c.segs {
		c.segs[i].max = per
		c.segs[i].data = make(map[int64]*cacheEnt, per)
	}
	return c
}

// seg spreads pre values over segments; sequential pre values (a
// subtree scan) land on different segments.
func (c *polyCache) seg(pre int64) *cacheSeg {
	return &c.segs[(uint64(pre)*0x9E3779B97F4A7C15>>32)&c.mask]
}

func (c *polyCache) get(pre int64) (ring.Poly, bool) {
	if len(c.segs) == 0 {
		return nil, false
	}
	s := c.seg(pre)
	s.mu.Lock()
	e, ok := s.data[pre]
	var p ring.Poly
	if ok {
		e.ref = true
		// Copy the slice header under the lock: a concurrent put may
		// overwrite e.p for an already-resident key.
		p = e.p
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return p, true
	}
	c.misses.Add(1)
	return nil, false
}

func (c *polyCache) put(pre int64, p ring.Poly) {
	if len(c.segs) == 0 {
		return
	}
	s := c.seg(pre)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.data[pre]; ok {
		e.p = p
		e.ref = true
		return
	}
	if len(s.data) < s.max {
		s.data[pre] = &cacheEnt{p: p}
		s.keys = append(s.keys, pre)
		return
	}
	// CLOCK sweep: clear reference bits until an unreferenced victim
	// turns up. Terminates within two revolutions.
	for {
		if s.hand >= len(s.keys) {
			s.hand = 0
		}
		victim := s.keys[s.hand]
		e := s.data[victim]
		if e.ref {
			e.ref = false
			s.hand++
			continue
		}
		delete(s.data, victim)
		s.data[pre] = &cacheEnt{p: p}
		s.keys[s.hand] = pre
		s.hand++
		return
	}
}

// purge drops every resident entry (hit/miss counters keep running).
// The mutation apply path calls it: after rows renumber or shares
// change, no cached decode can be trusted.
func (c *polyCache) purge() {
	for i := range c.segs {
		s := &c.segs[i]
		s.mu.Lock()
		clear(s.data)
		s.keys = s.keys[:0]
		s.hand = 0
		s.mu.Unlock()
	}
}

func (c *polyCache) len() int {
	n := 0
	for i := range c.segs {
		s := &c.segs[i]
		s.mu.Lock()
		n += len(s.data)
		s.mu.Unlock()
	}
	return n
}

// counters returns the cumulative hit/miss counts.
func (c *polyCache) counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// PolyCache is the exported handle to a decoded-polynomial cache. The
// server runtime owns cache objects — one per tenant when quotas
// partition the global budget, or a single shared one when they do not
// — and hands them to the filters it builds; filters without an
// injected cache still create a private one (NewServerFilter).
type PolyCache struct{ c *polyCache }

// NewPolyCache creates a cache bounded to the given number of decoded
// polynomials (<= 0 disables caching).
func NewPolyCache(entries int) *PolyCache {
	return &PolyCache{c: newPolyCache(entries)}
}

// Counters returns the cache's cumulative hit/miss counts across every
// filter using it.
func (p *PolyCache) Counters() (hits, misses int64) { return p.c.counters() }

// Len returns the number of resident entries.
func (p *PolyCache) Len() int { return p.c.len() }
