package filter

import (
	"sync"

	"encshare/internal/ring"
)

// polyCache is a bounded map from pre values to decoded server-share
// polynomials with cheap random-ish eviction (clock-free: evict an
// arbitrary entry via map iteration order). Decoding a radix-q blob costs
// dozens of big.Int divisions, so even a small cache pays off for the
// repeated evaluations the engines issue against the same hot nodes.
// The single mutex also makes it the rendezvous point for the batch
// worker pool: concurrent EvalBatch workers share decoded polynomials
// through it, and within one batch requests are pre-grouped by node so
// the pool never decodes the same blob twice for one exchange.
type polyCache struct {
	mu   sync.Mutex
	max  int
	data map[int64]ring.Poly
}

func newPolyCache(max int) *polyCache {
	if max < 0 {
		max = 0
	}
	return &polyCache{max: max, data: make(map[int64]ring.Poly, max)}
}

func (c *polyCache) get(pre int64) (ring.Poly, bool) {
	if c.max == 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.data[pre]
	return p, ok
}

func (c *polyCache) put(pre int64, p ring.Poly) {
	if c.max == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.data) >= c.max {
		for k := range c.data {
			delete(c.data, k)
			break
		}
	}
	c.data[pre] = p
}

func (c *polyCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.data)
}
