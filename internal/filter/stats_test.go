package filter

import (
	"testing"

	"encshare/internal/rmi"
)

// TestServerStatsLocal checks the counter plumbing against the
// in-process filter: misses+decodes on first touch, hits on repeats.
func TestServerStatsLocal(t *testing.T) {
	fx := newFixture(t, testXML)
	v := fx.val(t, "item")

	before, err := fx.local.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	root, err := fx.local.Root()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := fx.local.Contains(root.Pre, v); err != nil {
			t.Fatal(err)
		}
	}
	after, err := fx.local.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	d := ServerStats{
		Evals:       after.Evals - before.Evals,
		CacheHits:   after.CacheHits - before.CacheHits,
		CacheMisses: after.CacheMisses - before.CacheMisses,
		Decodes:     after.Decodes - before.Decodes,
	}
	if d.Evals != 5 {
		t.Fatalf("Evals delta = %d, want 5", d.Evals)
	}
	if d.Decodes != 1 {
		t.Fatalf("Decodes delta = %d, want 1 (one miss, then cached)", d.Decodes)
	}
	if d.CacheMisses != 1 || d.CacheHits != 4 {
		t.Fatalf("cache delta = %d hits / %d misses, want 4/1", d.CacheHits, d.CacheMisses)
	}
}

// TestServerStatsRemote checks the stats travel over the wire and that
// the remote numbers equal the server's own counters.
func TestServerStatsRemote(t *testing.T) {
	fx := newFixture(t, testXML)
	v := fx.val(t, "person")
	root, err := fx.remote.Root()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.remote.Contains(root.Pre, v); err != nil {
		t.Fatal(err)
	}
	got, err := fx.remote.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	want, err := fx.server.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("remote stats %+v != server stats %+v", got, want)
	}
	if got.Evals == 0 {
		t.Fatal("remote stats all zero after an evaluation")
	}
}

// oldServerAPI hides every optional extension, modeling a server that
// predates StatsAPI (and batching).
type oldServerAPI struct{ inner ServerAPI }

func (o oldServerAPI) Root() (NodeMeta, error)                    { return o.inner.Root() }
func (o oldServerAPI) Node(pre int64) (NodeMeta, error)           { return o.inner.Node(pre) }
func (o oldServerAPI) Children(pre int64) ([]NodeMeta, error)     { return o.inner.Children(pre) }
func (o oldServerAPI) Descendants(p, q int64) ([]NodeMeta, error) { return o.inner.Descendants(p, q) }
func (o oldServerAPI) EvalAt(pre int64, pt uint32) (uint32, error) {
	return o.inner.EvalAt(pre, pt)
}
func (o oldServerAPI) Poly(pre int64) (PolyRow, error)            { return o.inner.Poly(pre) }
func (o oldServerAPI) ChildrenPolys(pre int64) ([]PolyRow, error) { return o.inner.ChildrenPolys(pre) }
func (o oldServerAPI) Count() (int64, error)                      { return o.inner.Count() }

// TestServerStatsDowngrade: a pre-stats server yields zeros, not an
// error — once discovered, without further exchanges.
func TestServerStatsDowngrade(t *testing.T) {
	fx := newFixture(t, testXML)

	// Plain ServerAPI without StatsAPI: the client reports zeros.
	cli := NewClient(oldServerAPI{fx.server}, fx.scheme)
	st, err := cli.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st != (ServerStats{}) {
		t.Fatalf("non-stats backend produced %+v, want zeros", st)
	}

	// A remote whose server did not register the method: the proxy
	// learns from the unknown-method reply and stops asking.
	srv := rmi.NewServer()
	RegisterServer(srv, oldServerAPI{fx.server})
	cli2 := rmi.Pipe(srv)
	defer cli2.Close()
	rem := NewRemote(cli2)
	for i := 0; i < 2; i++ {
		st, err := rem.ServerStats()
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if st != (ServerStats{}) {
			t.Fatalf("round %d: old server produced %+v, want zeros", i, st)
		}
	}
	if got := rem.CallCounts()[methodServerStats]; got != 1 {
		t.Fatalf("stats method tried %d times, want 1 (then downgraded)", got)
	}
}
