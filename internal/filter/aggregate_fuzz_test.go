package filter

import (
	"math/rand"
	"testing"

	"encshare/internal/gf"
)

// FuzzAggregateFrame throws arbitrary bytes at the aggregate frame
// codec and the server fold behind it. Three properties must hold for
// ANY input:
//
//  1. UnpackPres never panics, and any list it accepts round-trips
//     losslessly through the canonical PackPres encoding.
//  2. AggregateBatch never panics; it either rejects the frame with an
//     error or returns chunks that tile the decoded row list.
//  3. Every accepted SUM reply, completed with the client shares,
//     equals the per-row reconstruction oracle — a hostile frame can
//     make the server refuse, never make it fold wrongly.
func FuzzAggregateFrame(f *testing.F) {
	fx := newFixture(f, wideXML(40))
	pres := fx.presNamed("item")

	f.Add(PackPres(pres), wireAggSum, 0, uint16(1))
	f.Add(PackPres(pres[:5]), wireAggCount, 3, uint16(0))
	f.Add(PackPres([]int64{1}), wireAggSum, 1, uint16(99))
	f.Add([]byte{}, wireAggSum, 0, uint16(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, wireAggCount, 0, uint16(7))
	f.Add([]byte{3, 1, 0, 1}, wireAggSum, 2, uint16(3))

	f.Fuzz(func(t *testing.T, raw []byte, kind uint8, chunkRows int, maskSeed uint16) {
		rows, perr := UnpackPres(raw)
		if perr == nil {
			again, err := UnpackPres(PackPres(rows))
			if err != nil {
				t.Fatalf("canonical re-encoding rejected: %v", err)
			}
			if len(again) != len(rows) {
				t.Fatalf("canonical round trip changed length %d -> %d", len(rows), len(again))
			}
			for i := range rows {
				if again[i] != rows[i] {
					t.Fatalf("canonical round trip changed rows[%d]", i)
				}
			}
		}

		var mask []gf.Elem
		if perr == nil && maskSeed != 0 {
			rng := rand.New(rand.NewSource(int64(maskSeed)))
			mask = make([]gf.Elem, len(rows))
			for i := range mask {
				mask[i] = gf.Elem(1 + rng.Intn(82))
			}
		}
		reply, err := fx.server.AggregateBatch(AggregateRequest{
			Ver:       AggregateFrameVersion,
			Kind:      kind,
			Pres:      raw,
			Mask:      mask,
			ChunkRows: chunkRows,
		})
		if err != nil {
			return // rejection is always a legal answer
		}
		if perr != nil {
			t.Fatalf("server folded a row list the codec rejects: %v", perr)
		}
		bound := normChunkRows(chunkRows, fx.r.Field().Q())
		offs, err := chunkOffsets(rows, reply.Chunks, bound)
		if err != nil {
			t.Fatalf("accepted frame, reply does not tile: %v", err)
		}
		// Complete each chunk through the real client verification path
		// (checkPoint 0: arbitrary fuzz rows share no common name) and
		// compare the total against the reconstruction oracle.
		wantKind := AggSum
		if kind == wireAggCount {
			wantKind = AggCount
		}
		total := fx.r.NewPoly()
		for i := range reply.Chunks {
			ck := &reply.Chunks[i]
			seg := rows[offs[i] : offs[i]+int(ck.Rows)]
			var subMask []gf.Elem
			if mask != nil {
				subMask = mask[offs[i] : offs[i]+int(ck.Rows)]
			}
			sum, err := fx.local.checkChunk(ck, seg, subMask, wantKind, 0)
			if err != nil {
				t.Fatalf("honest chunk failed verification: %v", err)
			}
			if sum != nil {
				fx.r.AddInPlace(total, sum)
				fx.r.PutPoly(sum)
			}
		}
		if kind == wireAggSum {
			want := fx.r.NewPoly()
			for _, pre := range rows {
				p, err := fx.local.Reconstruct(pre)
				if err != nil {
					t.Fatalf("server folded unfetchable row %d: %v", pre, err)
				}
				fx.r.AddInPlace(want, p)
			}
			if !fx.r.Equal(total, want) {
				t.Fatal("completed fold != reconstruction oracle")
			}
		}
	})
}
