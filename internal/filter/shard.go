// Shard seams: the two optional ServerAPI extensions a clustered
// deployment needs from each shard server.
//
// A cluster shard holds a contiguous pre-range slice of the node table.
// Point operations (EvalAt, Node, Poly) route to the one shard owning the
// pre, but the children of a node near a shard boundary can spill into
// the next shard, so the strict equality test's node+children bundle
// cannot be answered by any single shard. PartialAPI solves this: every
// relevant shard returns the *fragment* it stores (the node row if owned,
// plus its local child rows), and the cluster client merges fragments in
// shard order — which is pre order, because shards tile the pre axis.
//
// RangeAPI lets a shard self-describe the pre interval it covers, so a
// cluster client can be dialed with nothing but a list of addresses: no
// manifest file has to travel to the query side.
package filter

import (
	"errors"

	"encshare/internal/store"
)

// PreRange is the contiguous pre interval a server's node table covers.
type PreRange struct {
	Lo int64
	Hi int64
}

// RangeAPI is the optional extension through which a (shard) server
// reports its pre coverage.
type RangeAPI interface {
	// PreRange returns the smallest and largest stored pre.
	PreRange() (PreRange, error)
}

// PartialNodePolys is one shard's fragment of an equality-test bundle
// for a single node: the node's own share row when this shard owns the
// pre, plus whatever child share rows this shard stores. Unlike
// NodePolys, a missing node is not an error — a shard legitimately holds
// children of a node it does not own.
type PartialNodePolys struct {
	Has      bool // this shard owns the node itself
	Node     PolyRow
	Children []PolyRow
	Err      string
}

// PartialAPI is the optional extension cluster clients use to assemble
// equality bundles across shard boundaries.
type PartialAPI interface {
	// NodePolysPartial returns, for every listed pre, the fragment of the
	// equality bundle stored locally.
	NodePolysPartial(pres []int64) ([]PartialNodePolys, error)
}

var (
	_ RangeAPI   = (*ServerFilter)(nil)
	_ PartialAPI = (*ServerFilter)(nil)
)

// PreRange implements RangeAPI against the store.
func (s *ServerFilter) PreRange() (PreRange, error) {
	lo, hi, err := s.st.MinMaxPre()
	if err != nil {
		return PreRange{}, err
	}
	return PreRange{Lo: lo, Hi: hi}, nil
}

// NodePolysPartial implements PartialAPI: like NodePolysBatch, but a pre
// this table does not hold yields Has=false instead of a member error,
// and the children list carries only locally stored rows.
func (s *ServerFilter) NodePolysPartial(pres []int64) ([]PartialNodePolys, error) {
	out := make([]PartialNodePolys, len(pres))
	parallelFor(len(pres), s.poolSize(), func(i int) {
		row, err := s.st.Node(pres[i])
		switch {
		case err == nil:
			out[i].Has = true
			out[i].Node = PolyRow{Pre: row.Pre, Poly: row.Poly}
		case errors.Is(err, store.ErrNotFound):
			// Not owned here; the owning shard reports the node row.
		default:
			out[i].Err = err.Error()
			return
		}
		kids, err := s.st.Children(pres[i])
		if err != nil {
			out[i].Err = err.Error()
			return
		}
		out[i].Children = make([]PolyRow, len(kids))
		for j, k := range kids {
			out[i].Children[j] = PolyRow{Pre: k.Pre, Poly: k.Poly}
		}
	})
	return out, nil
}
