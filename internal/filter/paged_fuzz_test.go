package filter

import (
	"math/rand"
	"testing"
)

// The paged protocols carry resume cursors chosen by one side and
// honored by the other, so the properties worth fuzzing are exactly the
// cursor algebra: for ANY budget, member shape, and resume point, the
// page loop must terminate, every page must make progress, and the
// reassembled reply must be byte-for-byte the unpaged reply. The fakes
// below synthesize member row sets from the fuzz seed without a store,
// so the fuzzer explores shapes (empty members, single wide members,
// budget smaller than one row) far faster than an encoder could build
// them.

// fakeDescAPI serves synthetic descendant rows. Each member's span is
// identified by its (unique) Post value, and a span's reply is every
// member row with Pre > span.Pre — the same contract the real store
// slice obeys, which is what makes the resume-at-last-delivered-pre
// cursor sound.
type fakeDescAPI struct {
	byPost map[int64][]NodeMeta
}

func (f *fakeDescAPI) DescendantsBatch(spans []Span) ([][]NodeMeta, error) {
	out := make([][]NodeMeta, len(spans))
	for i, sp := range spans {
		for _, r := range f.byPost[sp.Post] {
			if r.Pre > sp.Pre {
				out[i] = append(out[i], r)
			}
		}
	}
	return out, nil
}

func (f *fakeDescAPI) EvalBatch([]EvalRequest) ([]EvalResult, error) { return nil, nil }
func (f *fakeDescAPI) NodeBatch([]int64) ([]NodeMeta, error)         { return nil, nil }
func (f *fakeDescAPI) ChildrenBatch([]int64) ([][]NodeMeta, error)   { return nil, nil }
func (f *fakeDescAPI) NodePolysBatch([]int64) ([]NodePolys, error)   { return nil, nil }

// fuzzMembers synthesizes nMembers spans with pseudo-random widths and
// pre gaps from seed.
func fuzzMembers(seed int64, nMembers int) ([]Span, *fakeDescAPI) {
	rng := rand.New(rand.NewSource(seed))
	api := &fakeDescAPI{byPost: map[int64][]NodeMeta{}}
	spans := make([]Span, nMembers)
	pre := int64(1)
	for m := 0; m < nMembers; m++ {
		post := int64(1_000_000 + m) // unique member key
		start := pre
		width := rng.Intn(200) // occasionally empty members
		var rows []NodeMeta
		for k := 0; k < width; k++ {
			pre += 1 + int64(rng.Intn(3)) // gaps: pres are not dense
			rows = append(rows, NodeMeta{Pre: pre, Post: post, Parent: start})
		}
		api.byPost[post] = rows
		spans[m] = Span{Pre: start, Post: post}
		pre++
	}
	return spans, api
}

// drainDescPages drives the server-side pager from an arbitrary cursor
// exactly as the remote client loop does, with the client's progress
// validation, and returns the reassembled per-member rows.
func drainDescPages(t *testing.T, api BatchAPI, spans []Span, member int, resume int64) [][]NodeMeta {
	t.Helper()
	out := make([][]NodeMeta, len(spans))
	var total int
	for _, sp := range spans {
		total += len(api.(*fakeDescAPI).byPost[sp.Post])
	}
	m, r := member, resume
	for pages := 0; ; pages++ {
		if pages > total+len(spans)+2 {
			t.Fatalf("page loop did not terminate after %d pages", pages)
		}
		rep, err := pageDescendants(api, descPageArgs{Spans: spans, Member: m, Resume: r})
		if err != nil {
			t.Fatalf("pageDescendants(member=%d resume=%d): %v", m, r, err)
		}
		for _, p := range rep.Parts {
			if p.Member < m || p.Member >= len(spans) {
				t.Fatalf("page addressed member %d outside [%d, %d)", p.Member, m, len(spans))
			}
			out[p.Member] = append(out[p.Member], p.Metas...)
		}
		if rep.Done {
			return out
		}
		if rep.NextMember < m || rep.NextMember >= len(spans) ||
			(rep.NextMember == m && rep.NextResume <= r) {
			t.Fatalf("no progress: cursor %d/%d -> %d/%d", m, r, rep.NextMember, rep.NextResume)
		}
		m, r = rep.NextMember, rep.NextResume
	}
}

// FuzzPageDescendants: for random budgets, member widths, and resume
// points, the paged descendants protocol reassembles the unpaged reply
// byte-for-byte — both from the start and when (re)entered at an
// arbitrary mid-stream cursor, as happens after a replica failover.
func FuzzPageDescendants(f *testing.F) {
	f.Add(int64(1), uint8(3), uint16(256), uint8(0), uint16(0))
	f.Add(int64(42), uint8(1), uint16(64), uint8(0), uint16(17))
	f.Add(int64(7), uint8(6), uint16(31), uint8(2), uint16(5))
	f.Add(int64(99), uint8(0), uint16(4096), uint8(1), uint16(0))
	f.Fuzz(func(t *testing.T, seed int64, nMembers uint8, budget uint16, startMember uint8, startResume uint16) {
		nm := int(nMembers)%8 + 1
		spans, api := fuzzMembers(seed, nm)

		oldBudget, oldChunk := ReplyByteBudget, pageFetchChunk
		ReplyByteBudget = int(budget)%4096 + 1 // down to budgets smaller than one row
		pageFetchChunk = int(budget)%7 + 1     // small windows: exercise refetch boundaries
		defer func() { ReplyByteBudget, pageFetchChunk = oldBudget, oldChunk }()

		want, err := api.DescendantsBatch(spans)
		if err != nil {
			t.Fatal(err)
		}

		// Full reconstruction from the zero cursor.
		got := drainDescPages(t, api, spans, 0, 0)
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("member %d: %d rows, want %d", i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("member %d row %d: %+v != %+v", i, j, got[i][j], want[i][j])
				}
			}
		}

		// Tail reconstruction from an arbitrary resume point, as a
		// failover restart would issue it.
		sm := int(startMember) % nm
		resume := spans[sm].Pre + int64(startResume)%600 // may overshoot the member: tail can be empty
		tail := drainDescPages(t, api, spans, sm, resume)
		for i := 0; i < sm; i++ {
			if len(tail[i]) != 0 {
				t.Fatalf("resumed loop delivered %d rows for already-finished member %d", len(tail[i]), i)
			}
		}
		for i := sm; i < nm; i++ {
			var wantTail []NodeMeta
			for _, r := range want[i] {
				if i > sm || r.Pre > resume {
					wantTail = append(wantTail, r)
				}
			}
			if len(tail[i]) != len(wantTail) {
				t.Fatalf("member %d tail from pre %d: %d rows, want %d", i, resume, len(tail[i]), len(wantTail))
			}
			for j := range wantTail {
				if tail[i][j] != wantTail[j] {
					t.Fatalf("member %d tail row %d: %+v != %+v", i, j, tail[i][j], wantTail[j])
				}
			}
		}
	})
}

// fuzzBundles synthesizes deterministic equality bundles: the poly
// sizes (and so the page split points) derive from the pre and seed.
func fuzzBundles(seed int64, pres []int64) func([]int64) ([]NodePolys, error) {
	return func(sub []int64) ([]NodePolys, error) {
		out := make([]NodePolys, len(sub))
		for i, pre := range sub {
			rng := rand.New(rand.NewSource(seed ^ pre))
			mk := func() PolyRow {
				poly := make([]byte, rng.Intn(300))
				rng.Read(poly)
				return PolyRow{Pre: pre, Poly: poly}
			}
			out[i].Node = mk()
			for k := 0; k < rng.Intn(4); k++ {
				out[i].Children = append(out[i].Children, mk())
			}
		}
		return out, nil
	}
}

// FuzzPageBundles: for random budgets and bundle sizes, the paged
// bundle protocol (NodePolysBatch / NodePolysPartial framing) delivers
// every requested member exactly once, in order, byte-for-byte equal to
// the unpaged fetch, from any legal entry cursor.
func FuzzPageBundles(f *testing.F) {
	f.Add(int64(1), uint8(5), uint16(512), uint8(0))
	f.Add(int64(3), uint8(1), uint16(16), uint8(0))
	f.Add(int64(8), uint8(7), uint16(100), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nMembers uint8, budget uint16, startMember uint8) {
		nm := int(nMembers)%12 + 1
		pres := make([]int64, nm)
		for i := range pres {
			pres[i] = int64(i*3 + 1)
		}
		fetch := fuzzBundles(seed, pres)

		oldBudget, oldChunk := ReplyByteBudget, pageFetchChunk
		ReplyByteBudget = int(budget)%2048 + 1
		pageFetchChunk = int(budget)%5 + 1
		defer func() { ReplyByteBudget, pageFetchChunk = oldBudget, oldChunk }()

		want, err := fetch(pres)
		if err != nil {
			t.Fatal(err)
		}

		start := int(startMember) % (nm + 1) // nm itself is legal: instantly Done
		got := make([]NodePolys, 0, nm)
		for pages := 0; ; pages++ {
			if pages > nm+2 {
				t.Fatalf("bundle page loop did not terminate after %d pages", pages)
			}
			rep, err := pageBundles(bundlePageArgs{Pres: pres, Member: start + len(got)}, fetch, nodePolysWire)
			if err != nil {
				t.Fatalf("pageBundles(member=%d): %v", start+len(got), err)
			}
			if len(rep.Bundles) == 0 && !rep.Done {
				t.Fatalf("empty page without Done at member %d", start+len(got))
			}
			got = append(got, rep.Bundles...)
			if start+len(got) > nm {
				t.Fatalf("pages delivered %d members for a request of %d", start+len(got), nm)
			}
			if rep.Done {
				break
			}
		}
		if len(got) != nm-start {
			t.Fatalf("reassembled %d members from cursor %d, want %d", len(got), start, nm-start)
		}
		for i, g := range got {
			w := want[start+i]
			if g.Err != w.Err || g.Node.Pre != w.Node.Pre || string(g.Node.Poly) != string(w.Node.Poly) {
				t.Fatalf("member %d node mismatch", start+i)
			}
			if len(g.Children) != len(w.Children) {
				t.Fatalf("member %d: %d children, want %d", start+i, len(g.Children), len(w.Children))
			}
			for j := range w.Children {
				if g.Children[j].Pre != w.Children[j].Pre || string(g.Children[j].Poly) != string(w.Children[j].Poly) {
					t.Fatalf("member %d child %d mismatch", start+i, j)
				}
			}
		}
	})
}
