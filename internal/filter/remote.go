package filter

import (
	"sync"
	"sync/atomic"
	"time"

	"encshare/internal/gf"
	"encshare/internal/obs"
	"encshare/internal/rmi"
)

// RMI method names of the filter service. Client proxy and server binding
// must agree; they are part of the wire protocol. The *Batch methods are
// the v2 additions: each call carries a whole engine step's work in one
// length-prefixed frame. The per-call methods remain registered so old
// clients keep working against new servers, and new clients fall back
// when a server predates the batch protocol.
const (
	methodRoot          = "filter.Root"
	methodNode          = "filter.Node"
	methodChildren      = "filter.Children"
	methodDescendants   = "filter.Descendants"
	methodEvalAt        = "filter.EvalAt"
	methodPoly          = "filter.Poly"
	methodChildrenPolys = "filter.ChildrenPolys"
	methodCount         = "filter.Count"

	methodEvalBatch        = "filter.EvalBatch"
	methodNodeBatch        = "filter.NodeBatch"
	methodChildrenBatch    = "filter.ChildrenBatch"
	methodDescendantsBatch = "filter.DescendantsBatch"
	methodNodePolysBatch   = "filter.NodePolysBatch"

	// v3 additions: byte-aware paged replies (see paged.go) and the
	// cluster seams (see shard.go).
	methodDescendantsPage      = "filter.DescendantsBatchPage"
	methodNodePolysPage        = "filter.NodePolysBatchPage"
	methodNodePolysPartialPage = "filter.NodePolysPartialPage"
	methodPreRange             = "filter.PreRange"

	// v4 addition: server-side work counters (cache hits/misses, blob
	// decodes, evaluations) for the compute experiments.
	methodServerStats = "filter.ServerStats"

	// v5 addition: server-side aggregate folds (see aggregate.go). The
	// frame itself is versioned (AggregateRequest.Ver) on top of the
	// method-level feature detection.
	methodAggregateBatch = "filter.AggregateBatch"

	// v6 additions: the mutation pipeline (see mutate.go). The batch
	// frame is versioned (MutationBatch.Ver) on top of method-level
	// feature detection; Epoch is the read side of the fence.
	methodMutate = "filter.Mutate"
	methodEpoch  = "filter.Epoch"

	// v7 additions: server-sequenced writer leases (see lease.go).
	methodAcquireLease = "filter.AcquireLease"
	methodReleaseLease = "filter.ReleaseLease"
	methodMutateLeased = "filter.MutateLeased"
)

type descArgs struct{ Pre, Post int64 }

type evalArgs struct {
	Pre   int64
	Point gf.Elem
}

// RegisterServer exposes a ServerAPI (normally a *ServerFilter) on an rmi
// server — the paper's server-side RMI endpoint. When the API also
// implements BatchAPI, the batch methods are registered as well. The
// methods land in the global handler set, which is the single-tenant
// layout; multi-tenant runtimes use RegisterServerAt per tenant.
func RegisterServer(srv *rmi.Server, api ServerAPI) {
	RegisterServerAt(srv, "", api)
}

// RegisterServerAt is RegisterServer into the named tenant's handler
// set: calls carrying that tenant in their frame header dispatch to
// this api, so one rmi server hosts many independent filter backends.
func RegisterServerAt(srv *rmi.Server, tenant string, api ServerAPI) {
	rmi.HandleFuncAt(srv, tenant, methodRoot, func(struct{}) (NodeMeta, error) {
		return api.Root()
	})
	rmi.HandleFuncAt(srv, tenant, methodNode, func(pre int64) (NodeMeta, error) {
		return api.Node(pre)
	})
	rmi.HandleFuncAt(srv, tenant, methodChildren, func(pre int64) ([]NodeMeta, error) {
		return api.Children(pre)
	})
	rmi.HandleFuncAt(srv, tenant, methodDescendants, func(a descArgs) ([]NodeMeta, error) {
		return api.Descendants(a.Pre, a.Post)
	})
	rmi.HandleFuncAt(srv, tenant, methodEvalAt, func(a evalArgs) (gf.Elem, error) {
		return api.EvalAt(a.Pre, a.Point)
	})
	rmi.HandleFuncAt(srv, tenant, methodPoly, func(pre int64) (PolyRow, error) {
		return api.Poly(pre)
	})
	rmi.HandleFuncAt(srv, tenant, methodChildrenPolys, func(pre int64) ([]PolyRow, error) {
		return api.ChildrenPolys(pre)
	})
	rmi.HandleFuncAt(srv, tenant, methodCount, func(struct{}) (int64, error) {
		return api.Count()
	})
	if b, ok := api.(BatchAPI); ok {
		rmi.HandleFuncAt(srv, tenant, methodEvalBatch, func(reqs []EvalRequest) ([]EvalResult, error) {
			return b.EvalBatch(reqs)
		})
		rmi.HandleFuncAt(srv, tenant, methodNodeBatch, func(pres []int64) ([]NodeMeta, error) {
			return b.NodeBatch(pres)
		})
		rmi.HandleFuncAt(srv, tenant, methodChildrenBatch, func(pres []int64) ([][]NodeMeta, error) {
			return b.ChildrenBatch(pres)
		})
		rmi.HandleFuncAt(srv, tenant, methodDescendantsBatch, func(spans []Span) ([][]NodeMeta, error) {
			return b.DescendantsBatch(spans)
		})
		rmi.HandleFuncAt(srv, tenant, methodNodePolysBatch, func(pres []int64) ([]NodePolys, error) {
			return b.NodePolysBatch(pres)
		})
		rmi.HandleFuncAt(srv, tenant, methodDescendantsPage, func(a descPageArgs) (descPageReply, error) {
			return pageDescendants(b, a)
		})
		rmi.HandleFuncAt(srv, tenant, methodNodePolysPage, func(a bundlePageArgs) (bundlePage[NodePolys], error) {
			return pageBundles(a, b.NodePolysBatch, nodePolysWire)
		})
	}
	if p, ok := api.(PartialAPI); ok {
		rmi.HandleFuncAt(srv, tenant, methodNodePolysPartialPage, func(a bundlePageArgs) (bundlePage[PartialNodePolys], error) {
			return pageBundles(a, p.NodePolysPartial, partialNodePolysWire)
		})
	}
	if ra, ok := api.(RangeAPI); ok {
		rmi.HandleFuncAt(srv, tenant, methodPreRange, func(struct{}) (PreRange, error) {
			return ra.PreRange()
		})
	}
	if sa, ok := api.(StatsAPI); ok {
		rmi.HandleFuncAt(srv, tenant, methodServerStats, func(struct{}) (ServerStats, error) {
			return sa.ServerStats()
		})
	}
	if aa, ok := api.(AggregateAPI); ok {
		rmi.HandleFuncAt(srv, tenant, methodAggregateBatch, func(req AggregateRequest) (AggregateReply, error) {
			return aa.AggregateBatch(req)
		})
	}
	if ma, ok := api.(MutableAPI); ok {
		rmi.HandleFuncAt(srv, tenant, methodMutate, func(b MutationBatch) (MutateReply, error) {
			return ma.Mutate(b)
		})
		rmi.HandleFuncAt(srv, tenant, methodEpoch, func(struct{}) (EpochInfo, error) {
			return ma.Epoch()
		})
	}
	if la, ok := api.(LeaseAPI); ok {
		rmi.HandleFuncAt(srv, tenant, methodAcquireLease, func(req LeaseRequest) (LeaseGrant, error) {
			return la.AcquireLease(req)
		})
		rmi.HandleFuncAt(srv, tenant, methodReleaseLease, func(id uint64) (struct{}, error) {
			return struct{}{}, la.ReleaseLease(id)
		})
		rmi.HandleFuncAt(srv, tenant, methodMutateLeased, func(lb LeasedBatch) (MutateReply, error) {
			return la.MutateLeased(lb)
		})
	}
}

// Remote is a ServerAPI + BatchAPI proxy over an rmi client connection.
// It counts its round-trips per method (see CallCounts), which is how the
// tests verify the one-round-trip-per-step property, and degrades to the
// per-call protocol against servers that do not expose the batch methods.
type Remote struct {
	c *rmi.Client

	mu     sync.Mutex
	counts map[string]int64

	flagMu      sync.Mutex
	noBatch     bool            // server answered "unknown method" to a batch call
	noStats     bool            // server predates the ServerStats method
	noAggregate bool            // server predates the aggregate fold frames
	noLease     bool            // server predates the writer-lease frames
	noPaged     map[string]bool // paged methods the server rejected, individually

	// trc is nil until SetTracer attaches one; untraced proxies pay one
	// pointer load per call.
	trc atomic.Pointer[remoteTracer]
}

// remoteTracer carries the tracer plus this proxy's identity in the
// span tree (which shard it serves, at which address).
type remoteTracer struct {
	tr    *obs.Tracer
	shard int
	addr  string
}

var (
	_ ServerAPI    = (*Remote)(nil)
	_ BatchAPI     = (*Remote)(nil)
	_ PartialAPI   = (*Remote)(nil)
	_ RangeAPI     = (*Remote)(nil)
	_ StatsAPI     = (*Remote)(nil)
	_ AggregateAPI = (*Remote)(nil)
	_ MutableAPI   = (*Remote)(nil)
)

// NewRemote wraps an rmi client as a ServerAPI with batch support.
func NewRemote(c *rmi.Client) *Remote {
	return &Remote{c: c, counts: map[string]int64{}}
}

// SetTracer attaches (or, with nil, detaches) a query tracer. Every
// round-trip this proxy issues while the tracer has an open capture
// window is recorded as a frame span labeled with the shard index and
// address, and its trace context rides the rmi frame header.
func (r *Remote) SetTracer(tr *obs.Tracer, shard int, addr string) {
	if tr == nil {
		r.trc.Store(nil)
		return
	}
	r.trc.Store(&remoteTracer{tr: tr, shard: shard, addr: addr})
}

// call issues one RMI round-trip and counts it against the method.
func (r *Remote) call(method string, args, reply any) error {
	return r.callRows(method, args, reply, nil)
}

// callRows is call with a row-count closure for the frame span, read
// from the decoded reply only after a successful exchange.
func (r *Remote) callRows(method string, args, reply any, rows func() int64) error {
	r.mu.Lock()
	r.counts[method]++
	r.mu.Unlock()
	t := r.trc.Load()
	if t == nil || !t.tr.Active() {
		return r.c.Call(method, args, reply)
	}
	tc := rmi.TraceContext{Trace: t.tr.ID(), Span: t.tr.NextSpanID()}
	start := time.Now()
	fi, err := r.c.CallTraced(method, args, reply, tc)
	f := obs.Frame{
		Method: method, Shard: t.shard, Addr: t.addr,
		Start: start, Dur: time.Since(start),
		BytesOut: int64(fi.BytesOut), BytesIn: int64(fi.BytesIn),
	}
	if err != nil {
		f.Err = err.Error()
	} else if rows != nil {
		f.Rows = rows()
	}
	t.tr.AddFrame(f)
	return err
}

// CallCounts returns a snapshot of round-trips issued, keyed by RMI
// method name.
func (r *Remote) CallCounts() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// RoundTrips returns the total number of round-trips issued.
func (r *Remote) RoundTrips() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for _, v := range r.counts {
		total += v
	}
	return total
}

// EvalRoundTrips returns the round-trips spent on filter evaluations
// (per-call EvalAt plus batched EvalBatch) — the quantity bounded by one
// per engine step in the batched pipeline.
func (r *Remote) EvalRoundTrips() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[methodEvalAt] + r.counts[methodEvalBatch]
}

// flagged reports a protocol-downgrade flag; noteUnknown records one
// from an "unknown method" reply.
func (r *Remote) flagged(flag *bool) bool {
	r.flagMu.Lock()
	defer r.flagMu.Unlock()
	return *flag
}

func (r *Remote) noteUnknown(err error, method string, flag *bool) bool {
	if !rmi.IsUnknownMethod(err, method) {
		return false
	}
	r.flagMu.Lock()
	*flag = true
	r.flagMu.Unlock()
	return true
}

// Paged methods downgrade individually: a server may register some of
// them (they hang off different optional interfaces), so rejecting one
// must not disable the others.
func (r *Remote) pagedOff(method string) bool {
	r.flagMu.Lock()
	defer r.flagMu.Unlock()
	return r.noPaged[method]
}

func (r *Remote) notePagedUnknown(err error, method string) bool {
	if !rmi.IsUnknownMethod(err, method) {
		return false
	}
	r.flagMu.Lock()
	if r.noPaged == nil {
		r.noPaged = map[string]bool{}
	}
	r.noPaged[method] = true
	r.flagMu.Unlock()
	return true
}

// Root implements ServerAPI.
func (r *Remote) Root() (NodeMeta, error) {
	var out NodeMeta
	err := r.call(methodRoot, struct{}{}, &out)
	return out, err
}

// Node implements ServerAPI.
func (r *Remote) Node(pre int64) (NodeMeta, error) {
	var out NodeMeta
	err := r.call(methodNode, pre, &out)
	return out, err
}

// Children implements ServerAPI.
func (r *Remote) Children(pre int64) ([]NodeMeta, error) {
	var out []NodeMeta
	err := r.call(methodChildren, pre, &out)
	return out, err
}

// Descendants implements ServerAPI.
func (r *Remote) Descendants(pre, post int64) ([]NodeMeta, error) {
	var out []NodeMeta
	err := r.call(methodDescendants, descArgs{pre, post}, &out)
	return out, err
}

// EvalAt implements ServerAPI.
func (r *Remote) EvalAt(pre int64, point gf.Elem) (gf.Elem, error) {
	var out gf.Elem
	err := r.call(methodEvalAt, evalArgs{pre, point}, &out)
	return out, err
}

// Poly implements ServerAPI.
func (r *Remote) Poly(pre int64) (PolyRow, error) {
	var out PolyRow
	err := r.call(methodPoly, pre, &out)
	return out, err
}

// ChildrenPolys implements ServerAPI.
func (r *Remote) ChildrenPolys(pre int64) ([]PolyRow, error) {
	var out []PolyRow
	err := r.call(methodChildrenPolys, pre, &out)
	return out, err
}

// Count implements ServerAPI.
func (r *Remote) Count() (int64, error) {
	var out int64
	err := r.call(methodCount, struct{}{}, &out)
	return out, err
}

// remoteBatch is the shared skeleton of every Remote batch method: try
// the batch frame once, detect a pre-batch server by its "unknown
// method" reply, and degrade to the per-call fallback.
func remoteBatch[Req, Resp any](r *Remote, method string, reqs []Req, fallback func([]Req) ([]Resp, error)) ([]Resp, error) {
	if !r.flagged(&r.noBatch) {
		var out []Resp
		err := r.callRows(method, reqs, &out, func() int64 { return int64(len(out)) })
		if err == nil {
			return out, nil
		}
		if !r.noteUnknown(err, method, &r.noBatch) {
			return nil, err
		}
	}
	return fallback(reqs)
}

// EvalBatch implements BatchAPI: one round-trip carrying every (node,
// point) pair. Against a pre-batch server it degrades to per-call EvalAt.
func (r *Remote) EvalBatch(reqs []EvalRequest) ([]EvalResult, error) {
	return remoteBatch(r, methodEvalBatch, reqs, func(reqs []EvalRequest) ([]EvalResult, error) {
		return perCallEvals(reqs, r.EvalAt)
	})
}

// NodeBatch implements BatchAPI.
func (r *Remote) NodeBatch(pres []int64) ([]NodeMeta, error) {
	return remoteBatch(r, methodNodeBatch, pres, func(pres []int64) ([]NodeMeta, error) {
		return perCallEach(pres, r.Node)
	})
}

// ChildrenBatch implements BatchAPI.
func (r *Remote) ChildrenBatch(pres []int64) ([][]NodeMeta, error) {
	return remoteBatch(r, methodChildrenBatch, pres, func(pres []int64) ([][]NodeMeta, error) {
		return perCallEach(pres, r.Children)
	})
}

// DescendantsBatch implements BatchAPI. The paged protocol is preferred
// (byte-bounded reply frames, splitting inside wide subtrees); servers
// without it get the unpaged batch, then per-call exchanges.
func (r *Remote) DescendantsBatch(spans []Span) ([][]NodeMeta, error) {
	if out, handled, err := r.descendantsPaged(spans); handled {
		return out, err
	}
	return remoteBatch(r, methodDescendantsBatch, spans, func(spans []Span) ([][]NodeMeta, error) {
		return perCallEach(spans, func(sp Span) ([]NodeMeta, error) {
			return r.Descendants(sp.Pre, sp.Post)
		})
	})
}

// NodePolysBatch implements BatchAPI, preferring the paged protocol.
func (r *Remote) NodePolysBatch(pres []int64) ([]NodePolys, error) {
	if out, handled, err := remotePagedBundles[NodePolys](r, methodNodePolysPage, pres); handled {
		return out, err
	}
	return remoteBatch(r, methodNodePolysBatch, pres, func(pres []int64) ([]NodePolys, error) {
		return perCallNodePolys(pres, r.Poly, r.ChildrenPolys)
	})
}

// NodePolysPartial implements PartialAPI: the cluster client's
// equality-bundle fragments, paged. Against a server that predates the
// paged protocol it degrades to per-call fetches, where a remote
// handler error on the node row means the row is not stored here.
func (r *Remote) NodePolysPartial(pres []int64) ([]PartialNodePolys, error) {
	if out, handled, err := remotePagedBundles[PartialNodePolys](r, methodNodePolysPartialPage, pres); handled {
		return out, err
	}
	out := make([]PartialNodePolys, len(pres))
	for i, pre := range pres {
		row, err := r.Poly(pre)
		if err == nil {
			out[i].Has, out[i].Node = true, row
		} else if _, terr := clientMemberErr(err); terr != nil {
			return nil, terr
		}
		kids, err := r.ChildrenPolys(pre)
		if err != nil {
			msg, terr := clientMemberErr(err)
			if terr != nil {
				return nil, terr
			}
			out[i].Err = msg
			continue
		}
		out[i].Children = kids
	}
	return out, nil
}

// ServerStats implements StatsAPI over the wire. A server that predates
// the method reports zeros (stats are diagnostics, not results, so the
// graceful degradation other optional methods get applies here too).
func (r *Remote) ServerStats() (ServerStats, error) {
	if r.flagged(&r.noStats) {
		return ServerStats{}, nil
	}
	var out ServerStats
	err := r.call(methodServerStats, struct{}{}, &out)
	if err != nil {
		if r.noteUnknown(err, methodServerStats, &r.noStats) {
			return ServerStats{}, nil
		}
		return ServerStats{}, err
	}
	return out, nil
}

// AggregateBatch implements AggregateAPI over the wire. Against a
// server that predates the aggregate frames it reports
// ErrAggregateUnsupported (remembered, so later folds skip the probe),
// and the client filter reconstructs the rows itself — the graceful
// downgrade path, visible to callers as O(rows) extra round-trips.
func (r *Remote) AggregateBatch(req AggregateRequest) (AggregateReply, error) {
	if r.flagged(&r.noAggregate) {
		return AggregateReply{}, ErrAggregateUnsupported
	}
	var out AggregateReply
	err := r.call(methodAggregateBatch, req, &out)
	if err != nil {
		if r.noteUnknown(err, methodAggregateBatch, &r.noAggregate) {
			return AggregateReply{}, ErrAggregateUnsupported
		}
		return AggregateReply{}, err
	}
	return out, nil
}

// PreRange implements RangeAPI over the wire (no fallback: a server too
// old to answer cannot join a cluster, and the error says so).
func (r *Remote) PreRange() (PreRange, error) {
	var out PreRange
	err := r.call(methodPreRange, struct{}{}, &out)
	return out, err
}

// Mutate implements MutableAPI over the wire. Writes cannot downgrade:
// a server that predates the mutation frames reports the typed
// ErrMutationUnsupported instead of pretending.
func (r *Remote) Mutate(b MutationBatch) (MutateReply, error) {
	var out MutateReply
	err := r.call(methodMutate, b, &out)
	if err != nil && rmi.IsUnknownMethod(err, methodMutate) {
		return MutateReply{}, ErrMutationUnsupported
	}
	return out, err
}

// Epoch implements MutableAPI over the wire.
func (r *Remote) Epoch() (EpochInfo, error) {
	var out EpochInfo
	err := r.call(methodEpoch, struct{}{}, &out)
	if err != nil && rmi.IsUnknownMethod(err, methodEpoch) {
		return EpochInfo{}, ErrMutationUnsupported
	}
	return out, err
}

// AcquireLease implements LeaseAPI over the wire. Against a server that
// predates the lease frames it reports ErrLeaseUnsupported (remembered)
// and the session falls back to optimistic client-side sequencing.
func (r *Remote) AcquireLease(req LeaseRequest) (LeaseGrant, error) {
	if r.flagged(&r.noLease) {
		return LeaseGrant{}, ErrLeaseUnsupported
	}
	var out LeaseGrant
	err := r.call(methodAcquireLease, req, &out)
	if err != nil {
		if r.noteUnknown(err, methodAcquireLease, &r.noLease) {
			return LeaseGrant{}, ErrLeaseUnsupported
		}
		return LeaseGrant{}, err
	}
	return out, nil
}

// ReleaseLease implements LeaseAPI over the wire. Releasing against a
// pre-lease server is a no-op: nothing was held.
func (r *Remote) ReleaseLease(id uint64) error {
	if r.flagged(&r.noLease) {
		return nil
	}
	var out struct{}
	err := r.call(methodReleaseLease, id, &out)
	if err != nil && r.noteUnknown(err, methodReleaseLease, &r.noLease) {
		return nil
	}
	return err
}

// MutateLeased implements LeaseAPI over the wire.
func (r *Remote) MutateLeased(lb LeasedBatch) (MutateReply, error) {
	if r.flagged(&r.noLease) {
		return MutateReply{}, ErrLeaseUnsupported
	}
	var out MutateReply
	err := r.call(methodMutateLeased, lb, &out)
	if err != nil && r.noteUnknown(err, methodMutateLeased, &r.noLease) {
		return MutateReply{}, ErrLeaseUnsupported
	}
	return out, err
}

var _ LeaseAPI = (*Remote)(nil)

// SetEpoch pins (or with 0 unpins) the epoch stamped on every
// subsequent frame of this proxy's connection.
func (r *Remote) SetEpoch(epoch uint64) { r.c.SetEpoch(epoch) }
