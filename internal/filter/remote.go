package filter

import (
	"encshare/internal/gf"
	"encshare/internal/rmi"
)

// RMI method names of the filter service. Client proxy and server binding
// must agree; they are part of the wire protocol.
const (
	methodRoot          = "filter.Root"
	methodNode          = "filter.Node"
	methodChildren      = "filter.Children"
	methodDescendants   = "filter.Descendants"
	methodEvalAt        = "filter.EvalAt"
	methodPoly          = "filter.Poly"
	methodChildrenPolys = "filter.ChildrenPolys"
	methodCount         = "filter.Count"
)

type descArgs struct{ Pre, Post int64 }

type evalArgs struct {
	Pre   int64
	Point gf.Elem
}

// RegisterServer exposes a ServerAPI (normally a *ServerFilter) on an rmi
// server — the paper's server-side RMI endpoint.
func RegisterServer(srv *rmi.Server, api ServerAPI) {
	rmi.HandleFunc(srv, methodRoot, func(struct{}) (NodeMeta, error) {
		return api.Root()
	})
	rmi.HandleFunc(srv, methodNode, func(pre int64) (NodeMeta, error) {
		return api.Node(pre)
	})
	rmi.HandleFunc(srv, methodChildren, func(pre int64) ([]NodeMeta, error) {
		return api.Children(pre)
	})
	rmi.HandleFunc(srv, methodDescendants, func(a descArgs) ([]NodeMeta, error) {
		return api.Descendants(a.Pre, a.Post)
	})
	rmi.HandleFunc(srv, methodEvalAt, func(a evalArgs) (gf.Elem, error) {
		return api.EvalAt(a.Pre, a.Point)
	})
	rmi.HandleFunc(srv, methodPoly, func(pre int64) (PolyRow, error) {
		return api.Poly(pre)
	})
	rmi.HandleFunc(srv, methodChildrenPolys, func(pre int64) ([]PolyRow, error) {
		return api.ChildrenPolys(pre)
	})
	rmi.HandleFunc(srv, methodCount, func(struct{}) (int64, error) {
		return api.Count()
	})
}

// Remote is a ServerAPI proxy over an rmi client connection.
type Remote struct {
	c *rmi.Client
}

var _ ServerAPI = (*Remote)(nil)

// NewRemote wraps an rmi client as a ServerAPI.
func NewRemote(c *rmi.Client) *Remote { return &Remote{c: c} }

// Root implements ServerAPI.
func (r *Remote) Root() (NodeMeta, error) {
	var out NodeMeta
	err := r.c.Call(methodRoot, struct{}{}, &out)
	return out, err
}

// Node implements ServerAPI.
func (r *Remote) Node(pre int64) (NodeMeta, error) {
	var out NodeMeta
	err := r.c.Call(methodNode, pre, &out)
	return out, err
}

// Children implements ServerAPI.
func (r *Remote) Children(pre int64) ([]NodeMeta, error) {
	var out []NodeMeta
	err := r.c.Call(methodChildren, pre, &out)
	return out, err
}

// Descendants implements ServerAPI.
func (r *Remote) Descendants(pre, post int64) ([]NodeMeta, error) {
	var out []NodeMeta
	err := r.c.Call(methodDescendants, descArgs{pre, post}, &out)
	return out, err
}

// EvalAt implements ServerAPI.
func (r *Remote) EvalAt(pre int64, point gf.Elem) (gf.Elem, error) {
	var out gf.Elem
	err := r.c.Call(methodEvalAt, evalArgs{pre, point}, &out)
	return out, err
}

// Poly implements ServerAPI.
func (r *Remote) Poly(pre int64) (PolyRow, error) {
	var out PolyRow
	err := r.c.Call(methodPoly, pre, &out)
	return out, err
}

// ChildrenPolys implements ServerAPI.
func (r *Remote) ChildrenPolys(pre int64) ([]PolyRow, error) {
	var out []PolyRow
	err := r.c.Call(methodChildrenPolys, pre, &out)
	return out, err
}

// Count implements ServerAPI.
func (r *Remote) Count() (int64, error) {
	var out int64
	err := r.c.Call(methodCount, struct{}{}, &out)
	return out, err
}
