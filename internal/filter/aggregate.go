// Server-side secret-shared aggregation (COUNT / SUM / AVG).
//
// The query engines end with the matching rows' pre positions in hand;
// until now the only way to compute anything over those rows was to ship
// every row's share blob to the client and reconstruct — O(rows) bytes
// per query. Additive sharing makes the heavy half of an aggregate a
// server-side fold instead: Σ f_p = Σ client_p + Σ server_p, so each
// backend sums the server shares of its matching rows locally and
// returns ONE polynomial per chunk, the client adds the PRG-regenerated
// Σ client_p, and the wire cost drops from O(rows) to O(chunks) —
// following OBSCURE (Gupta et al.) for verifiable secret-shared
// aggregation. The fold never reveals anything new to the server: it
// already stores every share it sums, and a sum of uniformly random
// polynomials is again uniformly random.
//
// Semantics. SUM is the coefficient-wise sum of the matching node
// polynomials (the additive aggregate the scheme supports natively).
// COUNT folds the constant 1 per matching row — a sum of ones — so it
// rides the same chunked frames at one field element per chunk. AVG is
// derived client-side as SUM · (COUNT mod q)⁻¹ and is undefined when q
// divides the row count (AvgUndefinedError).
//
// Wraparound rule. Field arithmetic is mod q, so a sum of ones aliases
// every q rows. Servers therefore fold in chunks of at most q−1 rows:
// within a chunk the field count equals the true row count exactly, the
// client cross-checks it against the rows it asked for, and the exact
// total count is the int64 sum of chunk sizes — never a field element.
// The share fold itself (SUM) is exact at any size; only counters need
// the rule.
//
// Verification. The request may carry a random nonzero mask ρ_p per row
// (client-chosen, fresh per call). The server then also returns the
// masked fold Σ ρ_p·server_p per chunk. The client completes both
// aggregates (T = Σ f_p, V = Σ ρ_p·f_p) and checks the known-root
// invariant: every row matched the query's last name t, so (x − map(t))
// divides every f_p, hence T(map(t)) = 0 and V(map(t)) = 0 must both
// hold. A corrupted or wrongly-folded chunk violates a check with
// probability ≈ 1 − 1/q per independent equation, and any violation
// surfaces as a typed IntegrityError naming the chunk (and, behind a
// cluster, the shard). See DESIGN.md "Aggregation & verification" for
// the exact threat model — in particular what an adaptive malicious
// server can and cannot forge.
package filter

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"encshare/internal/gf"
	"encshare/internal/ring"
)

// AggKind selects the aggregate computed over the matching rows.
type AggKind int

const (
	// AggCount counts the matching rows (sum of ones, chunk-exact).
	AggCount AggKind = iota
	// AggSum sums the matching node polynomials coefficient-wise.
	AggSum
	// AggAvg is SUM scaled by the inverse of COUNT mod q, client-side.
	AggAvg
)

func (k AggKind) String() string {
	switch k {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	}
	return fmt.Sprintf("AggKind(%d)", int(k))
}

// AggregateFrameVersion versions the aggregate request/reply frames; a
// server rejects versions it does not speak with a deterministic error,
// and a server that predates the frames entirely answers "unknown
// method", which the client turns into the reconstruct fallback.
const AggregateFrameVersion = 1

// Wire aggregate kinds. AVG has no wire form: it asks for SUM frames
// and divides client-side.
const (
	wireAggCount uint8 = 1
	wireAggSum   uint8 = 2
)

// maxAggRows bounds how many rows one aggregate frame may name, so a
// hostile length prefix cannot drive a huge allocation before parsing.
const maxAggRows = 1 << 26

// AggregateRequest is the aggregate fold frame. Pres is the delta-varint
// packing of the strictly increasing row positions (PackPres) — a couple
// of bytes per row instead of eight, which matters because the request
// is the only O(rows) part of the exchange. Mask, when non-empty, holds
// one nonzero field element per packed row and requests the verification
// fold. ChunkRows bounds the fold chunk size; servers clamp it to
// [1, q−1] (0 means q−1).
type AggregateRequest struct {
	Ver       uint8
	Kind      uint8
	Pres      []byte
	Mask      []gf.Elem
	ChunkRows int
}

// AggregateChunk is one fold unit of the reply: the consecutive run of
// requested rows [FirstPre, LastPre] it covers, the exact row count
// (Rows, with Count its in-field image — equal because chunks stay
// below q), and for SUM frames the folded share blob plus, when a mask
// was sent, the masked fold and Σ ρ_p (MaskCnt).
type AggregateChunk struct {
	FirstPre int64
	LastPre  int64
	Rows     uint32
	Count    gf.Elem
	MaskCnt  gf.Elem
	Sum      []byte
	MaskSum  []byte
	// Origin is a client-side annotation: the cluster layer stamps each
	// chunk with the shard label it came from, so integrity failures
	// name the misbehaving shard. Servers leave it empty.
	Origin string
}

// AggregateReply carries the chunks in request order: concatenated, the
// chunks tile the requested row list exactly — the client verifies that
// before trusting any value.
type AggregateReply struct {
	Ver    uint8
	Chunks []AggregateChunk
}

// AggregateAPI is the optional aggregation extension of ServerAPI. The
// in-process ServerFilter implements it directly; Remote speaks it over
// the wire (reporting ErrAggregateUnsupported against old servers); the
// cluster filter scatters one frame per shard and concatenates.
type AggregateAPI interface {
	AggregateBatch(req AggregateRequest) (AggregateReply, error)
}

// ErrAggregateUnsupported reports a backend that predates the aggregate
// frames. The client filter reacts by reconstructing every matching row
// itself — the pre-aggregate protocol — so sessions against old servers
// keep answering, just at O(rows) cost.
var ErrAggregateUnsupported = errors.New("filter: server does not support aggregate frames")

// IntegrityError reports an aggregate reply that failed verification:
// chunks that do not tile the requested rows, a field count that
// contradicts the row count, or a folded value that violates the
// known-root invariant. It is deliberately NOT retryable — unlike a
// transport error, it is evidence about the data a shard returned, and
// must surface to the caller rather than be silently retried away.
type IntegrityError struct {
	// Origin names the shard the offending chunk came from, when the
	// cluster layer attributed it ("" for single-server sessions).
	Origin string
	// Pre is the first row position of the offending chunk (0 when the
	// failure is not attributable to one chunk).
	Pre    int64
	Reason string
}

func (e *IntegrityError) Error() string {
	s := "filter: aggregate integrity: " + e.Reason
	if e.Origin != "" {
		s += fmt.Sprintf(" (shard %s)", e.Origin)
	}
	if e.Pre != 0 {
		s += fmt.Sprintf(" (chunk at pre %d)", e.Pre)
	}
	return s
}

// AvgUndefinedError reports an AVG whose divisor vanished: the row count
// is a multiple of q (including zero rows), so COUNT mod q has no
// inverse and the average is undefined in the field.
type AvgUndefinedError struct {
	Count int64
	Q     uint32
}

func (e *AvgUndefinedError) Error() string {
	return fmt.Sprintf("filter: average undefined: %d matching rows ≡ 0 (mod q=%d)", e.Count, e.Q)
}

// --- row-list codec ----------------------------------------------------

// PackPres encodes a strictly increasing list of non-negative row
// positions as a count-prefixed delta-varint stream: ~1–2 bytes per row
// for the dense pre runs query results are, keeping the aggregate
// request an order of magnitude below the share blobs it replaces.
func PackPres(pres []int64) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+2*len(pres))
	buf = binary.AppendUvarint(buf, uint64(len(pres)))
	prev := int64(-1)
	for _, p := range pres {
		buf = binary.AppendUvarint(buf, uint64(p-prev))
		prev = p
	}
	return buf
}

// UnpackPres decodes a PackPres stream, enforcing everything the fold
// relies on: a sane row count, strictly increasing non-negative
// positions, no overflow, no trailing garbage. The input is
// client-controlled on the server and server-independent on the client,
// so every violation is a deterministic error, never a panic.
func UnpackPres(b []byte) ([]int64, error) {
	count, k := binary.Uvarint(b)
	if k <= 0 {
		return nil, errors.New("filter: aggregate rows: bad count prefix")
	}
	b = b[k:]
	if count > maxAggRows {
		return nil, fmt.Errorf("filter: aggregate rows: count %d exceeds limit %d", count, maxAggRows)
	}
	if uint64(len(b)) < count { // every delta is at least one byte
		return nil, fmt.Errorf("filter: aggregate rows: %d bytes cannot hold %d rows", len(b), count)
	}
	out := make([]int64, 0, count)
	uprev := uint64(0) // prev+1, kept unsigned so overflow checks stay simple
	for i := uint64(0); i < count; i++ {
		d, k := binary.Uvarint(b)
		if k <= 0 {
			return nil, errors.New("filter: aggregate rows: truncated delta")
		}
		b = b[k:]
		if d == 0 {
			return nil, errors.New("filter: aggregate rows: positions not strictly increasing")
		}
		if d > (1<<63)-uprev {
			return nil, errors.New("filter: aggregate rows: position overflow")
		}
		uprev += d
		out = append(out, int64(uprev-1))
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("filter: aggregate rows: %d trailing bytes", len(b))
	}
	return out, nil
}

// normChunkRows clamps a requested fold chunk bound to [1, q−1] — the
// wraparound-safe window (0 and out-of-range ask for the maximum).
func normChunkRows(req int, q uint32) int {
	max := int(q) - 1
	if req <= 0 || req > max {
		return max
	}
	return req
}

// --- server side -------------------------------------------------------

// AggregateBatch implements AggregateAPI on the in-process server
// filter: validate the frame, fold the named rows' server shares in
// wraparound-safe chunks (in parallel on the batch pool), and return one
// blob — plus the masked fold when a verification mask came along — per
// chunk. Shares are immutable, so the fold is a pure function of the
// request and replaying or duplicating a frame is always safe.
func (s *ServerFilter) AggregateBatch(req AggregateRequest) (AggregateReply, error) {
	if req.Ver != AggregateFrameVersion {
		return AggregateReply{}, fmt.Errorf("filter: aggregate frame version %d unsupported (want %d)", req.Ver, AggregateFrameVersion)
	}
	if req.Kind != wireAggCount && req.Kind != wireAggSum {
		return AggregateReply{}, fmt.Errorf("filter: unknown aggregate kind %d", req.Kind)
	}
	pres, err := UnpackPres(req.Pres)
	if err != nil {
		return AggregateReply{}, err
	}
	q := s.r.Field().Q()
	if len(req.Mask) != 0 {
		if len(req.Mask) != len(pres) {
			return AggregateReply{}, fmt.Errorf("filter: aggregate mask has %d elements for %d rows", len(req.Mask), len(pres))
		}
		for _, m := range req.Mask {
			if m == 0 || m >= q {
				return AggregateReply{}, fmt.Errorf("filter: aggregate mask element %d outside [1, %d]", m, q-1)
			}
		}
	}
	bound := normChunkRows(req.ChunkRows, q)
	n := len(pres)
	nChunks := (n + bound - 1) / bound
	chunks := make([]AggregateChunk, nChunks)
	errs := make([]error, nChunks)
	parallelFor(nChunks, s.poolSize(), func(ci int) {
		lo := ci * bound
		hi := lo + bound
		if hi > n {
			hi = n
		}
		var mask []gf.Elem
		if len(req.Mask) != 0 {
			mask = req.Mask[lo:hi]
		}
		errs[ci] = s.foldChunk(&chunks[ci], pres[lo:hi], mask, req.Kind)
	})
	for _, e := range errs {
		if e != nil {
			return AggregateReply{}, e
		}
	}
	s.aggregates.Add(1)
	return AggregateReply{Ver: AggregateFrameVersion, Chunks: chunks}, nil
}

// foldChunk folds one wraparound-safe chunk: at most q−1 rows, so the
// in-field sum of ones (Count) equals the true row count exactly.
func (s *ServerFilter) foldChunk(ck *AggregateChunk, seg []int64, mask []gf.Elem, kind uint8) error {
	f := s.r.Field()
	ck.FirstPre, ck.LastPre = seg[0], seg[len(seg)-1]
	ck.Rows = uint32(len(seg))
	ck.Count = gf.Elem(len(seg))
	for _, m := range mask {
		ck.MaskCnt = f.Add(ck.MaskCnt, m)
	}
	if kind == wireAggCount {
		// COUNT needs no share arithmetic, but the server still proves
		// it holds every named row — a count over rows it lost would
		// verify and still be wrong.
		for _, pre := range seg {
			if _, err := s.st.NodeMeta(pre); err != nil {
				return err
			}
		}
		return nil
	}
	sum := s.r.GetPoly()
	defer s.r.PutPoly(sum)
	var maskSum ring.Poly
	if mask != nil {
		maskSum = s.r.GetPoly()
		defer s.r.PutPoly(maskSum)
	}
	for i, pre := range seg {
		p, err := s.serverPoly(pre)
		if err != nil {
			return err
		}
		s.r.SumInto(sum, p)
		if maskSum != nil {
			s.r.AddScaledInPlace(maskSum, p, mask[i])
		}
	}
	ck.Sum = s.r.AppendBytes(make([]byte, 0, s.r.PolyBytes()), sum)
	if maskSum != nil {
		ck.MaskSum = s.r.AppendBytes(make([]byte, 0, s.r.PolyBytes()), maskSum)
	}
	return nil
}

// --- client side -------------------------------------------------------

// AggregateOptions tunes one client-side aggregate fold.
type AggregateOptions struct {
	// NoVerify skips the verification share (no mask travels, no
	// known-root check runs). The fold still tiles- and count-checks.
	NoVerify bool
	// ChunkRows bounds the server fold chunk (0 = q−1, the maximum
	// wraparound-safe window).
	ChunkRows int
	// CheckPoint is the known-root evaluation point map(last query
	// name): every matching row's polynomial vanishes there, which is
	// what the verification share is checked against. Zero — never a
	// map value — skips the root check (e.g. unmappable last names).
	CheckPoint gf.Elem
}

// Aggregate is the client-side result of an aggregate fold.
type Aggregate struct {
	Kind AggKind
	// Count is the exact number of rows folded (int64, never a field
	// element — the wraparound rule keeps it exact at any scale).
	Count int64
	// Sum is Σ f_p over the matching rows (nil for AggCount).
	Sum ring.Poly
	// Avg is Sum · (Count mod q)⁻¹ (AggAvg only).
	Avg ring.Poly
	// Folded reports that server-side fold frames were used; false means
	// the backend predates them and the client reconstructed every row.
	Folded bool
	// Verified reports that the verification share traveled and every
	// chunk passed the mask and known-root checks.
	Verified bool
}

// aggReqChunkSize bounds how many rows one aggregate request frame
// names. A variable so tests can shrink it to force multi-frame folds.
var aggReqChunkSize = 1 << 16

// aggRand sources the verification masks (crypto/rand; a variable so
// tests can pin it).
var aggRand io.Reader = cryptorand.Reader

// AggregateFold computes the requested aggregate over the given rows —
// the aggregation phase run after a query has produced its matching pre
// set. Backends speaking AggregateAPI serve it in O(chunks) bytes; any
// other backend (or a pre-aggregate server answering "unknown method")
// degrades to per-row reconstruction, the exact client-side oracle the
// fold is verified against in the tests.
func (c *Client) AggregateFold(pres []int64, kind AggKind, opts AggregateOptions) (*Aggregate, error) {
	if kind != AggCount && kind != AggSum && kind != AggAvg {
		return nil, fmt.Errorf("filter: unknown aggregate kind %v", kind)
	}
	sorted := sortedDedup(pres)
	agg := &Aggregate{Kind: kind, Count: int64(len(sorted)), Folded: true, Verified: !opts.NoVerify}
	if kind != AggCount {
		agg.Sum = c.r.NewPoly()
	}
	if len(sorted) > 0 {
		api, ok := c.api.(AggregateAPI)
		err := ErrAggregateUnsupported
		if ok {
			err = c.foldFrames(agg, api, sorted, kind, opts)
		}
		if errors.Is(err, ErrAggregateUnsupported) {
			err = c.foldFromRows(agg, sorted, kind)
		}
		if err != nil {
			return nil, err
		}
	}
	if kind == AggAvg {
		if err := c.finishAvg(agg); err != nil {
			return nil, err
		}
	}
	return agg, nil
}

// sortedDedup returns the rows sorted strictly increasing — the order
// PackPres requires and the tiling check assumes. Engine results are
// already sorted and unique; this keeps the entry point safe for any
// caller.
func sortedDedup(pres []int64) []int64 {
	out := append([]int64(nil), pres...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, p := range out {
		if i == 0 || p != out[w-1] {
			out[w] = p
			w++
		}
	}
	return out[:w]
}

// foldFrames runs the aggregate through fold frames, verifying each
// chunk as it lands. The accumulated sum replaces agg.Sum only on full
// success, so a downgrade mid-way restarts cleanly.
func (c *Client) foldFrames(agg *Aggregate, api AggregateAPI, sorted []int64, kind AggKind, opts AggregateOptions) error {
	q := c.r.Field().Q()
	bound := normChunkRows(opts.ChunkRows, q)
	wireKind := wireAggSum
	if kind == AggCount {
		wireKind = wireAggCount
	}
	var total ring.Poly
	if kind != AggCount {
		total = c.r.NewPoly()
	}
	err := chunked(len(sorted), aggReqChunkSize, func(lo, hi int) error {
		seg := sorted[lo:hi]
		var mask []gf.Elem
		if !opts.NoVerify {
			var err error
			if mask, err = randomMask(len(seg), q); err != nil {
				return err
			}
		}
		req := AggregateRequest{
			Ver:       AggregateFrameVersion,
			Kind:      wireKind,
			Pres:      PackPres(seg),
			Mask:      mask,
			ChunkRows: opts.ChunkRows,
		}
		reply, err := api.AggregateBatch(req)
		if err != nil {
			return err
		}
		if reply.Ver != AggregateFrameVersion {
			return &BadReplyError{Msg: fmt.Sprintf("aggregate reply version %d (want %d)", reply.Ver, AggregateFrameVersion)}
		}
		offs, err := chunkOffsets(seg, reply.Chunks, bound)
		if err != nil {
			return err
		}
		sums := make([]ring.Poly, len(reply.Chunks))
		errs := make([]error, len(reply.Chunks))
		parallelFor(len(reply.Chunks), c.poolSize(), func(i int) {
			ck := &reply.Chunks[i]
			sub := seg[offs[i] : offs[i]+int(ck.Rows)]
			var subMask []gf.Elem
			if mask != nil {
				subMask = mask[offs[i] : offs[i]+int(ck.Rows)]
			}
			sums[i], errs[i] = c.checkChunk(ck, sub, subMask, kind, opts.CheckPoint)
		})
		var firstErr error
		for i := range reply.Chunks {
			if errs[i] != nil && firstErr == nil {
				firstErr = errs[i]
			}
			if sums[i] != nil {
				if firstErr == nil {
					c.r.AddInPlace(total, sums[i])
				}
				c.r.PutPoly(sums[i])
			}
		}
		return firstErr
	})
	if err != nil {
		return err
	}
	if kind != AggCount {
		agg.Sum = total
	}
	return nil
}

// chunkOffsets validates that the reply chunks tile the requested rows
// exactly — consecutive runs, in order, within the wraparound bound —
// and returns each chunk's starting offset into seg. Everything after
// this walk may index seg by chunk safely.
func chunkOffsets(seg []int64, chunks []AggregateChunk, bound int) ([]int, error) {
	offs := make([]int, len(chunks))
	off := 0
	for i := range chunks {
		ck := &chunks[i]
		rows := int(ck.Rows)
		if rows < 1 || rows > bound {
			return nil, chunkIntegrityErr(ck, fmt.Sprintf("chunk of %d rows outside [1, %d]", rows, bound))
		}
		if off+rows > len(seg) {
			return nil, chunkIntegrityErr(ck, "chunks cover more rows than requested")
		}
		sub := seg[off : off+rows]
		if ck.FirstPre != sub[0] || ck.LastPre != sub[rows-1] {
			return nil, chunkIntegrityErr(ck, "chunk bounds do not tile the requested rows")
		}
		offs[i] = off
		off += rows
	}
	if off != len(seg) {
		return nil, &IntegrityError{Reason: fmt.Sprintf("chunks cover %d of %d requested rows", off, len(seg))}
	}
	return offs, nil
}

func chunkIntegrityErr(ck *AggregateChunk, reason string) error {
	return &IntegrityError{Origin: ck.Origin, Pre: ck.FirstPre, Reason: reason}
}

// checkChunk verifies one chunk and, for SUM frames, completes the
// aggregate by folding the client shares in (returning the completed
// chunk sum in a pooled polynomial the caller must PutPoly).
func (c *Client) checkChunk(ck *AggregateChunk, seg []int64, mask []gf.Elem, kind AggKind, checkPoint gf.Elem) (ring.Poly, error) {
	f := c.r.Field()
	// The chunk is below q rows, so the in-field sum of ones must match
	// the true row count exactly — the wraparound rule at work.
	if ck.Count != gf.Elem(len(seg)) {
		return nil, chunkIntegrityErr(ck, fmt.Sprintf("field count %d for %d rows", ck.Count, len(seg)))
	}
	if mask != nil {
		var want gf.Elem
		for _, m := range mask {
			want = f.Add(want, m)
		}
		if ck.MaskCnt != want {
			return nil, chunkIntegrityErr(ck, "masked count mismatch")
		}
	}
	if kind == AggCount {
		if len(ck.Sum) != 0 || len(ck.MaskSum) != 0 {
			return nil, &BadReplyError{Msg: "count chunk carried share blobs"}
		}
		return nil, nil
	}
	T := c.r.GetPoly()
	if err := c.r.DecodeInto(T, ck.Sum); err != nil {
		c.r.PutPoly(T)
		return nil, chunkIntegrityErr(ck, "sum blob: "+err.Error())
	}
	c.Counters.Decodes.Add(1)
	c.scheme.AddShares(T, seg)
	c.Counters.Folds.Add(int64(len(seg)))
	if checkPoint != 0 {
		if c.r.Eval(T, checkPoint) != 0 {
			c.r.PutPoly(T)
			return nil, chunkIntegrityErr(ck, "folded sum violates the known-root invariant")
		}
		if mask != nil {
			V := c.r.GetPoly()
			if err := c.r.DecodeInto(V, ck.MaskSum); err != nil {
				c.r.PutPoly(V)
				c.r.PutPoly(T)
				return nil, chunkIntegrityErr(ck, "verification blob: "+err.Error())
			}
			c.Counters.Decodes.Add(1)
			c.scheme.AddSharesScaled(V, seg, mask)
			bad := c.r.Eval(V, checkPoint) != 0
			c.r.PutPoly(V)
			if bad {
				c.r.PutPoly(T)
				return nil, chunkIntegrityErr(ck, "verification share violates the known-root invariant")
			}
		}
	}
	return T, nil
}

// foldFromRows is the pre-aggregate fallback and the oracle the fold is
// tested against: fetch every row's share, reconstruct, and sum
// client-side — O(rows) exchanges and bytes, exactly what old servers
// cost (each Poly call lands in Session.RoundTrips). COUNT needs no
// server work at all here: the client already named the rows.
func (c *Client) foldFromRows(agg *Aggregate, sorted []int64, kind AggKind) error {
	agg.Folded, agg.Verified = false, false
	if kind == AggCount {
		return nil
	}
	total := c.r.NewPoly()
	buf := c.r.GetPoly()
	defer c.r.PutPoly(buf)
	for _, pre := range sorted {
		row, err := c.api.Poly(pre)
		if err != nil {
			return err
		}
		if err := c.r.DecodeInto(buf, row.Poly); err != nil {
			return decodeErr(pre, err)
		}
		c.Counters.Decodes.Add(1)
		c.scheme.ReconstructInto(buf, buf, uint64(pre))
		c.Counters.Reconstructions.Add(1)
		c.r.AddInPlace(total, buf)
		c.Counters.Folds.Add(1)
	}
	agg.Sum = total
	return nil
}

// finishAvg derives AVG = SUM · (COUNT mod q)⁻¹.
func (c *Client) finishAvg(agg *Aggregate) error {
	f := c.r.Field()
	cnt := gf.Elem(agg.Count % int64(f.Q()))
	if cnt == 0 {
		return &AvgUndefinedError{Count: agg.Count, Q: f.Q()}
	}
	agg.Avg = c.r.AddScaledInPlace(c.r.NewPoly(), agg.Sum, f.Inv(cnt))
	return nil
}

// randomMask draws n independent uniform elements of [1, q−1] from
// aggRand (rejection-sampled, so exactly uniform).
func randomMask(n int, q uint32) ([]gf.Elem, error) {
	out := make([]gf.Elem, n)
	span := uint64(q - 1)
	limit := (uint64(1) << 32) - ((uint64(1) << 32) % span)
	buf := make([]byte, 4*n)
	i := 0
	for i < n {
		if _, err := io.ReadFull(aggRand, buf); err != nil {
			return nil, err
		}
		for off := 0; off+4 <= len(buf) && i < n; off += 4 {
			v := uint64(binary.BigEndian.Uint32(buf[off:]))
			if v >= limit {
				continue
			}
			out[i] = gf.Elem(1 + v%span)
			i++
		}
	}
	return out, nil
}
