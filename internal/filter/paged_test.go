package filter

import (
	"strings"
	"testing"

	"encshare/internal/rmi"
)

// wideXML builds a document with one deliberately wide node: a root with
// n children, so the root's descendant list and equality bundle dwarf
// any member-count chunk bound — the shape that could blow the rmi
// frame before byte-aware paging.
func wideXML(n int) string {
	var sb strings.Builder
	sb.WriteString("<site>")
	for i := 0; i < n; i++ {
		sb.WriteString("<item/>")
	}
	sb.WriteString("</site>")
	return sb.String()
}

// TestPagedDescendantsWideNode: with a tiny reply budget, a single wide
// member must stream out over several pages — same rows, same order, no
// frame error.
func TestPagedDescendantsWideNode(t *testing.T) {
	fx := newFixture(t, wideXML(3000))
	oldBudget := ReplyByteBudget
	ReplyByteBudget = 4096
	t.Cleanup(func() { ReplyByteBudget = oldBudget })

	rem := NewRemote(fx.rmiCli)
	root, err := rem.Root()
	if err != nil {
		t.Fatal(err)
	}
	spans := []Span{{Pre: root.Pre, Post: root.Post}}
	got, err := rem.DescendantsBatch(spans)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fx.server.DescendantsBatch(spans)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != len(want[0]) {
		t.Fatalf("paged descendants returned %d rows, want %d", len(got[0]), len(want[0]))
	}
	for i := range want[0] {
		if got[0][i] != want[0][i] {
			t.Fatalf("row %d = %+v, want %+v (within-member split must preserve order)", i, got[0][i], want[0][i])
		}
	}
	if pages := rem.CallCounts()[methodDescendantsPage]; pages < 2 {
		t.Fatalf("wide member under a %d-byte budget used %d page(s), expected several", ReplyByteBudget, pages)
	}
}

// TestPagedNodePolysManyMembers: bundle batches split between bundles by
// byte size; every member still comes back, in order.
func TestPagedNodePolysManyMembers(t *testing.T) {
	fx := newFixture(t, wideXML(500))
	oldBudget := ReplyByteBudget
	ReplyByteBudget = 4096
	t.Cleanup(func() { ReplyByteBudget = oldBudget })

	rem := NewRemote(fx.rmiCli)
	var pres []int64
	for pre := int64(1); pre <= fx.doc.Count; pre++ {
		pres = append(pres, pre)
	}
	got, err := rem.NodePolysBatch(pres)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fx.server.NodePolysBatch(pres)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Err != want[i].Err || got[i].Node.Pre != want[i].Node.Pre ||
			len(got[i].Children) != len(want[i].Children) {
			t.Fatalf("bundle %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if pages := rem.CallCounts()[methodNodePolysPage]; pages < 2 {
		t.Fatalf("%d bundles under a %d-byte budget used %d page(s), expected several", len(pres), ReplyByteBudget, pages)
	}

	// The root bundle alone exceeds the budget (500 child share rows):
	// the progress guarantee must still deliver it in one oversized page
	// rather than loop forever.
	one, err := rem.NodePolysPartial([]int64{1})
	if err != nil {
		t.Fatal(err)
	}
	if !one[0].Has || len(one[0].Children) != 500 {
		t.Fatalf("oversized single bundle = has=%v children=%d", one[0].Has, len(one[0].Children))
	}
}

// TestPagedNormalBudgetOnePage: under the default budget a normal batch
// costs exactly one exchange — paging must not change the round-trip
// economics the batch pipeline is built on.
func TestPagedNormalBudgetOnePage(t *testing.T) {
	fx := newFixture(t, testXML)
	rem := NewRemote(fx.rmiCli)
	root, err := rem.Root()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rem.DescendantsBatch([]Span{{Pre: root.Pre, Post: root.Post}}); err != nil {
		t.Fatal(err)
	}
	if _, err := rem.NodePolysBatch([]int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	counts := rem.CallCounts()
	if counts[methodDescendantsPage] != 1 || counts[methodNodePolysPage] != 1 {
		t.Fatalf("normal batches cost %d/%d pages, want 1/1",
			counts[methodDescendantsPage], counts[methodNodePolysPage])
	}
}

// batchOnlyAPI exposes the batch protocol but not the cluster partial
// extension — a server registering some paged methods but not others.
type batchOnlyAPI struct {
	ServerAPI
	BatchAPI
}

// TestPagedDowngradeIsPerMethod: rejecting one paged method must not
// disable the others — a missing NodePolysPartialPage falls back
// per-call while DescendantsBatch keeps using its paged protocol.
func TestPagedDowngradeIsPerMethod(t *testing.T) {
	fx := newFixture(t, wideXML(300))
	oldBudget := ReplyByteBudget
	ReplyByteBudget = 2048
	t.Cleanup(func() { ReplyByteBudget = oldBudget })

	srv := rmi.NewServer()
	RegisterServer(srv, batchOnlyAPI{fx.server, fx.server})
	cli := rmi.Pipe(srv)
	t.Cleanup(func() { cli.Close() })
	rem := NewRemote(cli)

	got, err := rem.NodePolysPartial([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].Has || len(got[0].Children) != 300 {
		t.Fatalf("partial fallback bundle = has=%v children=%d", got[0].Has, len(got[0].Children))
	}
	root, err := rem.Root()
	if err != nil {
		t.Fatal(err)
	}
	desc, err := rem.DescendantsBatch([]Span{{Pre: root.Pre, Post: root.Post}})
	if err != nil {
		t.Fatal(err)
	}
	if len(desc[0]) != 300 {
		t.Fatalf("descendants after partial downgrade = %d rows", len(desc[0]))
	}
	counts := rem.CallCounts()
	if counts[methodNodePolysPartialPage] != 1 {
		t.Fatalf("partial paged probed %d times", counts[methodNodePolysPartialPage])
	}
	if counts[methodDescendantsPage] < 2 {
		t.Fatalf("descendants abandoned its paged protocol: %v", counts)
	}
	if counts[methodDescendantsBatch] != 0 {
		t.Fatalf("descendants fell back to v1 despite paged support: %v", counts)
	}
}

// TestPagedFallbackToV1: against a PR1-era server (batch methods, no
// paged methods) the client probes once and downgrades to the unpaged
// batch — not all the way to per-call.
func TestPagedFallbackToV1(t *testing.T) {
	fx := newFixture(t, testXML)
	srv := rmi.NewServer()
	rmi.HandleFunc(srv, methodDescendantsBatch, func(spans []Span) ([][]NodeMeta, error) {
		return fx.server.DescendantsBatch(spans)
	})
	rmi.HandleFunc(srv, methodNodePolysBatch, func(pres []int64) ([]NodePolys, error) {
		return fx.server.NodePolysBatch(pres)
	})
	cli := rmi.Pipe(srv)
	t.Cleanup(func() { cli.Close() })
	rem := NewRemote(cli)

	root, err := fx.server.Root()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rem.DescendantsBatch([]Span{{Pre: root.Pre, Post: root.Post}})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got[0])) != fx.doc.Count-1 {
		t.Fatalf("v1 fallback returned %d rows", len(got[0]))
	}
	if _, err := rem.NodePolysBatch([]int64{1}); err != nil {
		t.Fatal(err)
	}
	// Each paged method probes once and downgrades independently (a
	// server may register some paged methods but not others), then the
	// v1 batch methods carry the traffic.
	if _, err := rem.DescendantsBatch([]Span{{Pre: root.Pre, Post: root.Post}}); err != nil {
		t.Fatal(err)
	}
	counts := rem.CallCounts()
	if counts[methodDescendantsPage] != 1 || counts[methodNodePolysPage] != 1 {
		t.Fatalf("expected exactly one paged probe per method, got %v", counts)
	}
	if counts[methodDescendantsBatch] != 2 || counts[methodNodePolysBatch] != 1 {
		t.Fatalf("v1 methods not used after downgrade: %v", counts)
	}
}
