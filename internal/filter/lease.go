// Writer leases: server-side sequencing for concurrent mutation
// sessions.
//
// PR 8's optimistic concurrency makes each writer guess the next batch
// sequence; two concurrent sessions collide with SeqGapError /
// BatchMismatchError and one replans per batch — correct, but pure
// contention. The lease protocol moves sequencing to the server: a
// writer acquires a short-TTL lease before planning, submits batches
// with Seq 0 (the server assigns lastSeq+1 under its own lock), and the
// lease fences stale planners — the lease ID bumps on every transfer to
// a different owner, so a writer that lost the lease gets a typed
// LeaseExpiredError instead of applying a plan computed against a table
// another writer has since rewritten.
//
// The lease does NOT serialize durability: MutateLeased releases the
// lease (when the batch asks) as soon as the batch is applied, before
// its covering fsync completes, so the next writer plans and stages
// while the previous batch's fdatasync is in flight and group commit
// still coalesces. It is also not required: servers keep accepting
// plain Mutate with explicit sequences (the cluster redelivery path
// depends on it), with the digest window as the correctness backstop.
package filter

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"encshare/internal/rmi"
)

// Lease TTL bounds: requests clamp into [default, max]. Short TTLs keep
// a crashed writer from blocking others for long; the cap keeps a
// stuck client from parking the write path.
const (
	DefaultLeaseTTL = 2 * time.Second
	MaxLeaseTTL     = 30 * time.Second
)

// LeaseRequest asks for the tenant's writer lease.
type LeaseRequest struct {
	// Owner identifies the requesting session (a random ID). Re-acquire
	// by the same owner extends the lease without bumping the lease ID.
	Owner string
	// TTLMillis is the requested validity window; 0 = DefaultLeaseTTL.
	TTLMillis int64
}

// LeaseGrant is a successful acquisition: the fencing ID to present
// with MutateLeased, plus the server's current write position so the
// session re-pins without an extra Epoch round-trip.
type LeaseGrant struct {
	ID        uint64
	TTLMillis int64
	LastSeq   uint64
	Epoch     uint64
	Range     PreRange
}

// LeasedBatch is a mutation under a lease. Seq 0 asks the server to
// assign the next sequence; Release hands the lease back as soon as the
// batch is applied (before its fsync completes), letting the next
// writer overlap with this batch's durability wait.
type LeasedBatch struct {
	LeaseID uint64
	Release bool
	B       MutationBatch
}

// LeaseAPI is the optional interface for server-sequenced multi-writer
// mutation. RegisterServerAt exposes it as the v7 wire methods.
type LeaseAPI interface {
	AcquireLease(req LeaseRequest) (LeaseGrant, error)
	ReleaseLease(id uint64) error
	MutateLeased(lb LeasedBatch) (MutateReply, error)
}

// ErrLeaseUnsupported reports a server that predates the lease frames.
// Sessions fall back to optimistic client-side sequencing.
var ErrLeaseUnsupported = errors.New("filter: server does not support writer leases")

// leaseHeldPrefix is the wire-stable start of a LeaseHeldError message.
const leaseHeldPrefix = "filter: lease held"

// LeaseHeldError refuses an acquisition because another writer holds a
// live lease. RetryAfterMillis is the remaining TTL — the longest the
// caller could need to wait.
type LeaseHeldError struct {
	Holder           string
	RetryAfterMillis int64
}

func (e *LeaseHeldError) Error() string {
	return fmt.Sprintf("%s: by %q for another %dms", leaseHeldPrefix, e.Holder, e.RetryAfterMillis)
}

// IsLeaseHeld reports whether err is a lease-held refusal, locally
// typed or over the wire.
func IsLeaseHeld(err error) bool {
	var le *LeaseHeldError
	if errors.As(err, &le) {
		return true
	}
	var re *rmi.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, leaseHeldPrefix)
}

// leaseExpiredPrefix is the wire-stable start of a LeaseExpiredError
// message.
const leaseExpiredPrefix = "filter: lease expired"

// LeaseExpiredError fences a MutateLeased whose lease is no longer
// live: the TTL lapsed, or another writer took the lease (the ID
// bumped). The batch was NOT applied; the cure is re-acquire + re-plan.
type LeaseExpiredError struct {
	ID uint64
}

func (e *LeaseExpiredError) Error() string {
	return fmt.Sprintf("%s: lease %d is no longer live", leaseExpiredPrefix, e.ID)
}

// IsLeaseExpired reports whether err is a lease-expiry fence, locally
// typed or over the wire.
func IsLeaseExpired(err error) bool {
	var le *LeaseExpiredError
	if errors.As(err, &le) {
		return true
	}
	var re *rmi.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, leaseExpiredPrefix)
}

// LeaseStats is a point-in-time view of the lease counters.
type LeaseStats struct {
	Acquires    uint64 // grants handed out (extensions included)
	Expirations uint64 // expired leases fenced or taken over
	ID          uint64 // current fencing ID (bumps on owner transfer)
	Held        bool
	Holder      string
}

// leaseState is the per-Mutable writer-lease bookkeeping. It has its
// own lock (below m.mu in the order; AcquireLease never takes m.mu, so
// acquisitions do not stall behind a long apply).
type leaseState struct {
	mu     sync.Mutex
	id     uint64
	owner  string // current holder; "" = unheld
	holder string // last granted owner — ID stays stable across one
	// owner's release/re-acquire cycles, bumping only on true transfer
	expires int64 // mono nanos; lazy expiry
	now     func() int64

	acquires    uint64
	expirations uint64
}

func (ls *leaseState) clock() int64 {
	if ls.now != nil {
		return ls.now()
	}
	return int64(time.Since(leaseEpoch))
}

// leaseEpoch anchors the default monotonic clock.
var leaseEpoch = time.Now()

// SetLeaseClock replaces the lease clock (monotonic nanoseconds) — a
// test hook for deterministic expiry.
func (m *Mutable) SetLeaseClock(now func() int64) {
	m.ls.mu.Lock()
	m.ls.now = now
	m.ls.mu.Unlock()
}

// AcquireLease implements LeaseAPI. Semantics:
//
//   - unheld (or held by the requester): granted; same-owner re-acquire
//     extends the TTL and keeps the lease ID, so an uninterrupted
//     writer's cached state stays valid across batches;
//   - held by another live owner: LeaseHeldError with the remaining
//     TTL;
//   - held by another EXPIRED owner: granted, the lease ID bumps (the
//     transfer fences the previous holder's in-flight plans), and the
//     expiration counter ticks.
func (m *Mutable) AcquireLease(req LeaseRequest) (LeaseGrant, error) {
	if req.Owner == "" {
		return LeaseGrant{}, fmt.Errorf("filter: lease request without owner")
	}
	ttl := time.Duration(req.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if ttl > MaxLeaseTTL {
		ttl = MaxLeaseTTL
	}
	ls := &m.ls
	ls.mu.Lock()
	now := ls.clock()
	if ls.owner != "" && ls.owner != req.Owner {
		if now < ls.expires {
			held := &LeaseHeldError{Holder: ls.owner, RetryAfterMillis: (ls.expires - now) / int64(time.Millisecond)}
			ls.mu.Unlock()
			return LeaseGrant{}, held
		}
		ls.expirations++
	}
	if req.Owner != ls.holder {
		ls.id++
	}
	ls.owner, ls.holder = req.Owner, req.Owner
	ls.expires = now + int64(ttl)
	ls.acquires++
	id := ls.id
	ls.mu.Unlock()

	// Position the grant so the session re-pins without extra frames.
	info, err := m.Epoch()
	if err != nil {
		return LeaseGrant{}, err
	}
	return LeaseGrant{
		ID:        id,
		TTLMillis: int64(ttl / time.Millisecond),
		LastSeq:   info.LastSeq,
		Epoch:     info.Epoch,
		Range:     info.Range,
	}, nil
}

// ReleaseLease implements LeaseAPI: hands the lease back if id is the
// live lease. Releasing an already-transferred or unknown id is a
// no-op, not an error — the release raced a takeover, which is fine.
func (m *Mutable) ReleaseLease(id uint64) error {
	ls := &m.ls
	ls.mu.Lock()
	if ls.id == id {
		ls.owner = ""
	}
	ls.mu.Unlock()
	return nil
}

// checkLease fences lb against the live lease. Caller holds m.mu.
func (ls *leaseState) check(id uint64) error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if id == 0 || id != ls.id {
		return &LeaseExpiredError{ID: id}
	}
	if ls.clock() >= ls.expires {
		ls.expirations++
		return &LeaseExpiredError{ID: id}
	}
	return nil
}

// releaseAtApply hands the lease back after a leased batch applied.
// Caller holds m.mu.
func (ls *leaseState) releaseAtApply(id uint64) {
	ls.mu.Lock()
	if ls.id == id {
		ls.owner = ""
	}
	ls.mu.Unlock()
}

// LeaseStatsNow returns the lease counters.
func (m *Mutable) LeaseStatsNow() LeaseStats {
	ls := &m.ls
	ls.mu.Lock()
	defer ls.mu.Unlock()
	held := ls.owner != "" && ls.clock() < ls.expires
	return LeaseStats{
		Acquires:    ls.acquires,
		Expirations: ls.expirations,
		ID:          ls.id,
		Held:        held,
		Holder:      ls.owner,
	}
}

// MutateLeased implements LeaseAPI: fence against the lease, assign the
// next sequence when the batch carries Seq 0, then run the standard
// journal/apply/fsync pipeline. The expiry check and the sequence
// assignment happen under the same lock that orders applies, so a
// fenced-out writer can never slip a stale plan between another
// writer's batches.
func (m *Mutable) MutateLeased(lb LeasedBatch) (MutateReply, error) {
	b := lb.B
	if b.Ver == 0 || b.Ver > MutationBatchVersion {
		return MutateReply{}, fmt.Errorf("filter: mutation batch version %d unsupported", b.Ver)
	}
	m.mu.Lock()
	if err := m.ls.check(lb.LeaseID); err != nil {
		m.mu.Unlock()
		return MutateReply{}, err
	}
	if b.Seq == 0 {
		b.Seq = m.lastSeq.Load() + 1
	}
	payload, err := EncodeBatch(b)
	if err != nil {
		m.mu.Unlock()
		return MutateReply{}, err
	}
	reply, commit, err := m.mutateLocked(b, payload)
	if lb.Release && err == nil {
		// Applied: the next writer can acquire, plan, and stage while
		// this batch's fsync is in flight — its commit will coalesce
		// with ours under the WAL's commit leader.
		m.ls.releaseAtApply(lb.LeaseID)
	}
	m.mu.Unlock()
	if commit != nil {
		if cerr := commit(); cerr != nil {
			werr := m.failWAL(b.Seq, cerr)
			if err == nil {
				err = werr
			}
		}
	}
	if err != nil {
		return MutateReply{}, err
	}
	return reply, nil
}

var _ LeaseAPI = (*Mutable)(nil)
