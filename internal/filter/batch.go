// Batched filter protocol: the round-trip aggregation layer.
//
// The paper's interactive protocol (§5.2) pays one client↔server exchange
// per candidate-node check, which is exactly the cost Figs. 5–6 measure.
// The batch API below collapses all checks of one engine step into a
// single exchange: the client ships every (node, point) pair at once, the
// server evaluates the batch members in parallel on a bounded worker
// pool, and one reply frame carries all field values back. The same
// aggregation is applied to navigation (children/descendant fetches) and
// to the strict test's polynomial retrievals, so a whole frontier is
// expanded and filtered in O(1) round-trips instead of O(candidates).
//
// Compatibility: BatchAPI is an optional extension of ServerAPI. The
// Client feature-detects it and falls back to per-call loops against
// servers that only speak the original protocol.
package filter

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"encshare/internal/gf"
	"encshare/internal/rmi"
	"encshare/internal/store"
)

// EvalRequest is one member of a batched evaluation: evaluate the server
// share of the node at Pre at Point.
type EvalRequest struct {
	Pre   int64
	Point gf.Elem
}

// EvalResult is the per-member reply. Err is a string (not error) so the
// batch stays gob-encodable and a failure pinpoints the member that
// caused it. Error identity (errors.Is/As) is not preserved across a
// batch — the wire format carries messages, exactly as per-call RMI
// replies do. Current consumers abort a whole client call on the first
// member error; the per-member granularity exists so partial-tolerance
// consumers can be added without a protocol change.
type EvalResult struct {
	Val gf.Elem
	Err string
}

// Span addresses a subtree by its (pre, post) interval, for batched
// descendant fetches.
type Span struct {
	Pre  int64
	Post int64
}

// NodePolys bundles everything the strict equality test needs for one
// candidate: the node's own share row plus all child share rows.
type NodePolys struct {
	Node     PolyRow
	Children []PolyRow
	Err      string
}

// BatchAPI is the batched extension of ServerAPI: each method is one
// round-trip carrying a whole engine step's worth of work.
type BatchAPI interface {
	// EvalBatch evaluates every (node, point) pair, in parallel server-side.
	EvalBatch(reqs []EvalRequest) ([]EvalResult, error)
	// NodeBatch returns the metadata of every listed node (parent steps).
	NodeBatch(pres []int64) ([]NodeMeta, error)
	// ChildrenBatch returns the children of every listed node, in order.
	ChildrenBatch(pres []int64) ([][]NodeMeta, error)
	// DescendantsBatch returns the proper descendants of every span.
	DescendantsBatch(spans []Span) ([][]NodeMeta, error)
	// NodePolysBatch returns the equality-test bundle of every listed node.
	NodePolysBatch(pres []int64) ([]NodePolys, error)
}

// defaultWorkers is the bound of the batch worker pools.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// parallelFor runs fn(0..n-1) on at most workers goroutines. With one
// worker (or one item) it degenerates to a plain loop, so callers pay no
// goroutine overhead for tiny batches.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// firstBatchErr converts the first per-member error of a batch into a Go
// error (the batch transport itself succeeded).
func firstBatchErr(errs []EvalResult) error {
	for _, r := range errs {
		if r.Err != "" {
			return errors.New(r.Err)
		}
	}
	return nil
}

// Batch frames must stay under the rmi frame limit (64 MiB), so client
// batches are split into bounded chunks before they hit the wire. A
// step still costs O(1) exchanges; the constant only grows for
// frontiers of tens of thousands of members. Chunk sizes are matched to
// the per-member reply weight: evaluations and node metadata are a few
// bytes each, children lists carry one fanout's worth of metadata, and
// descendant spans / poly bundles carry whole subtrees or share blobs,
// so they get small chunks with a wide safety margin. The bound is on
// member count, not bytes — a single pathological member (a subtree of
// millions of nodes) can still exceed the frame limit, exactly as it
// already could under the per-call protocol; byte-aware reply framing
// is a ROADMAP item. Variables, not constants, so tests can shrink
// them.
var (
	evalChunkSize     = 1 << 16 // one field element per member
	metaChunkSize     = 1 << 14 // one NodeMeta per member
	childrenChunkSize = 1 << 12 // one child list per member
	descChunkSize     = 256     // one whole subtree per member
	polyChunkSize     = 256     // node + all-children share blobs per member
)

// chunked calls fn on successive [lo, hi) windows of size at most chunk
// over n items.
func chunked(n, chunk int, fn func(lo, hi int) error) error {
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if err := fn(lo, hi); err != nil {
			return err
		}
	}
	return nil
}

// checkReplyLen guards against a buggy or malicious server answering a
// batch with the wrong member count — the server is untrusted in this
// scheme, so a bad reply must become a protocol error, not an
// out-of-range panic in the client. The typed BadReplyError additionally
// lets a replicated cluster retry the batch on another replica.
func checkReplyLen[T any](part []T, want int) error {
	if len(part) != want {
		return &BadReplyError{Msg: fmt.Sprintf("batch reply carried %d members for %d requests", len(part), want)}
	}
	return nil
}

// batchOrFallback is the shared skeleton of every client batch method:
// ship frame-bounded chunks through the BatchAPI when the server speaks
// it (validating each reply's member count), or run the per-call
// fallback otherwise.
func batchOrFallback[Req, Resp any](c *Client, reqs []Req, chunk int,
	batch func(BatchAPI, []Req) ([]Resp, error),
	fallback func([]Req) ([]Resp, error)) ([]Resp, error) {
	b, ok := c.api.(BatchAPI)
	if !ok {
		return fallback(reqs)
	}
	out := make([]Resp, 0, len(reqs))
	err := chunked(len(reqs), chunk, func(lo, hi int) error {
		part, err := batch(b, reqs[lo:hi])
		if err != nil {
			return err
		}
		if err := checkReplyLen(part, hi-lo); err != nil {
			return err
		}
		out = append(out, part...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// clientMemberErr classifies a per-call fallback error: node-level
// failures (missing rows, remote handler errors) become that member's
// Err string; anything else — a transport failure — aborts the whole
// batch rather than burn one doomed call per remaining member.
func clientMemberErr(err error) (string, error) {
	var re *rmi.RemoteError
	if errors.Is(err, store.ErrNotFound) || errors.As(err, &re) {
		return err.Error(), nil
	}
	return "", err
}

// perCallEvals runs one evaluation per call — the shared EvalBatch
// fallback of Client (third-party non-batch APIs) and Remote (pre-batch
// servers), classifying member errors with clientMemberErr.
func perCallEvals(reqs []EvalRequest, evalAt func(int64, gf.Elem) (gf.Elem, error)) ([]EvalResult, error) {
	out := make([]EvalResult, len(reqs))
	for i, q := range reqs {
		v, err := evalAt(q.Pre, q.Point)
		if err != nil {
			msg, terr := clientMemberErr(err)
			if terr != nil {
				return nil, terr
			}
			out[i].Err = msg
			continue
		}
		out[i].Val = v
	}
	return out, nil
}

// perCallEach runs one request per call — the shared navigation fallback
// of Client and Remote.
func perCallEach[Req, Resp any](reqs []Req, get func(Req) (Resp, error)) ([]Resp, error) {
	out := make([]Resp, len(reqs))
	for i, q := range reqs {
		resp, err := get(q)
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

// perCallNodePolys assembles equality bundles through per-call fetches —
// the shared fallback of Client (third-party non-batch APIs) and Remote
// (pre-batch servers).
func perCallNodePolys(pres []int64, poly func(int64) (PolyRow, error), children func(int64) ([]PolyRow, error)) ([]NodePolys, error) {
	out := make([]NodePolys, len(pres))
	for i, pre := range pres {
		row, err := poly(pre)
		if err == nil {
			var kids []PolyRow
			kids, err = children(pre)
			if err == nil {
				out[i] = NodePolys{Node: row, Children: kids}
				continue
			}
		}
		msg, terr := clientMemberErr(err)
		if terr != nil {
			return nil, terr
		}
		out[i].Err = msg
	}
	return out, nil
}

var _ BatchAPI = (*ServerFilter)(nil)

// SetWorkers bounds the server-side batch worker pool (default
// GOMAXPROCS; n < 1 resets to the default).
func (s *ServerFilter) SetWorkers(n int) {
	if n < 1 {
		n = defaultWorkers()
	}
	s.workers = n
}

func (s *ServerFilter) poolSize() int {
	if s.workers > 0 {
		return s.workers
	}
	return defaultWorkers()
}

// groupByPre splits request indices by node, preserving first-seen node
// order — the shared pre-grouping of the batched eval paths (server and
// client), which lets each side pay its per-node cost (decode, PRG
// stream) once however many points one node is asked.
func groupByPre(n int, preAt func(int) int64) (pres []int64, byPre map[int64][]int) {
	byPre = make(map[int64][]int, n)
	pres = make([]int64, 0, n)
	for i := 0; i < n; i++ {
		pre := preAt(i)
		if _, seen := byPre[pre]; !seen {
			pres = append(pres, pre)
		}
		byPre[pre] = append(byPre[pre], i)
	}
	return pres, byPre
}

// EvalBatch implements BatchAPI: all members are evaluated on the worker
// pool against the shared decoded-polynomial cache. Members are grouped
// by node first, so each distinct polynomial is fetched and decoded once
// per batch however many points it is evaluated at (the advanced
// engine's look-ahead asks several names of the same node); all of one
// node's points go through ring.EvalMany, a single pass over the
// coefficients.
func (s *ServerFilter) EvalBatch(reqs []EvalRequest) ([]EvalResult, error) {
	out := make([]EvalResult, len(reqs))
	pres, byPre := groupByPre(len(reqs), func(i int) int64 { return reqs[i].Pre })
	parallelFor(len(pres), s.poolSize(), func(pi int) {
		pre := pres[pi]
		idx := byPre[pre]
		p, err := s.serverPoly(pre)
		if err != nil {
			for _, i := range idx {
				out[i].Err = err.Error()
			}
			return
		}
		s.evals.Add(int64(len(idx)))
		var ptsArr, valsArr [8]gf.Elem
		var pts, vals []gf.Elem
		if len(idx) <= len(ptsArr) {
			pts, vals = ptsArr[:0], valsArr[:len(idx)]
		} else {
			pts, vals = make([]gf.Elem, 0, len(idx)), make([]gf.Elem, len(idx))
		}
		for _, i := range idx {
			pts = append(pts, reqs[i].Point)
		}
		s.r.EvalManyInto(vals, p, pts)
		for j, i := range idx {
			out[i].Val = vals[j]
		}
	})
	return out, nil
}

// NodeBatch implements BatchAPI.
func (s *ServerFilter) NodeBatch(pres []int64) ([]NodeMeta, error) {
	out := make([]NodeMeta, len(pres))
	errs := make([]error, len(pres))
	parallelFor(len(pres), s.poolSize(), func(i int) {
		row, err := s.st.NodeMeta(pres[i])
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = NodeMeta{Pre: row.Pre, Post: row.Post, Parent: row.Parent}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ChildrenBatch implements BatchAPI.
func (s *ServerFilter) ChildrenBatch(pres []int64) ([][]NodeMeta, error) {
	out := make([][]NodeMeta, len(pres))
	errs := make([]error, len(pres))
	parallelFor(len(pres), s.poolSize(), func(i int) {
		rows, err := s.st.ChildrenMeta(pres[i])
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = toMeta(rows)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DescendantsBatch implements BatchAPI.
func (s *ServerFilter) DescendantsBatch(spans []Span) ([][]NodeMeta, error) {
	out := make([][]NodeMeta, len(spans))
	errs := make([]error, len(spans))
	parallelFor(len(spans), s.poolSize(), func(i int) {
		metas, err := descendantsMeta(s.st, spans[i].Pre, spans[i].Post)
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = metas
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// NodePolysBatch implements BatchAPI.
func (s *ServerFilter) NodePolysBatch(pres []int64) ([]NodePolys, error) {
	out := make([]NodePolys, len(pres))
	parallelFor(len(pres), s.poolSize(), func(i int) {
		row, err := s.st.Node(pres[i])
		if err != nil {
			out[i].Err = err.Error()
			return
		}
		out[i].Node = PolyRow{Pre: row.Pre, Poly: row.Poly}
		kids, err := s.st.Children(pres[i])
		if err != nil {
			out[i].Err = err.Error()
			return
		}
		out[i].Children = make([]PolyRow, len(kids))
		for j, k := range kids {
			out[i].Children[j] = PolyRow{Pre: k.Pre, Poly: k.Poly}
		}
	})
	return out, nil
}

// Check is one client-level containment/equality check: node at Pre
// against evaluation point Point.
type Check struct {
	Pre   int64
	Point gf.Elem
}

// SetWorkers bounds the client-side worker pool used for share
// regeneration and reconstruction (default GOMAXPROCS; n < 1 resets).
func (c *Client) SetWorkers(n int) {
	if n < 1 {
		n = defaultWorkers()
	}
	c.workers = n
}

func (c *Client) poolSize() int {
	if c.workers > 0 {
		return c.workers
	}
	return defaultWorkers()
}

// evalBatch runs the server half of a check batch: one round-trip per
// chunk on a BatchAPI, a per-call loop otherwise.
func (c *Client) evalBatch(reqs []EvalRequest) ([]EvalResult, error) {
	return batchOrFallback(c, reqs, evalChunkSize,
		func(b BatchAPI, part []EvalRequest) ([]EvalResult, error) { return b.EvalBatch(part) },
		func(reqs []EvalRequest) ([]EvalResult, error) { return perCallEvals(reqs, c.api.EvalAt) })
}

// ContainsBatch runs the containment test for every check with a single
// server exchange: true at index i iff the subtree of checks[i].Pre
// contains a node mapped to checks[i].Point. The client halves of the
// evaluations run in parallel on the client worker pool, grouped by
// node: all points asked of one node share a single PRG stream pass
// (scheme.EvalClientMany), which is the dominant client-side cost.
func (c *Client) ContainsBatch(checks []Check) ([]bool, error) {
	if len(checks) == 0 {
		return nil, nil
	}
	reqs := make([]EvalRequest, len(checks))
	for i, ch := range checks {
		reqs[i] = EvalRequest(ch)
	}
	results, err := c.evalBatch(reqs)
	if err != nil {
		return nil, err
	}
	if err := firstBatchErr(results); err != nil {
		return nil, err
	}
	out := make([]bool, len(checks))
	pres, byPre := groupByPre(len(checks), func(i int) int64 { return checks[i].Pre })
	parallelFor(len(pres), c.poolSize(), func(pi int) {
		pre := pres[pi]
		idx := byPre[pre]
		var ptsArr, valsArr [8]gf.Elem
		var pts, vals []gf.Elem
		if len(idx) <= len(ptsArr) {
			pts, vals = ptsArr[:0], valsArr[:len(idx)]
		} else {
			pts, vals = make([]gf.Elem, 0, len(idx)), make([]gf.Elem, len(idx))
		}
		for _, i := range idx {
			pts = append(pts, checks[i].Point)
		}
		c.scheme.EvalClientMany(uint64(pre), pts, vals)
		f := c.r.Field()
		for j, i := range idx {
			out[i] = f.Add(results[i].Val, vals[j]) == 0
		}
	})
	c.Counters.Evaluations.Add(int64(len(checks)))
	return out, nil
}

// nodePolysBatch fetches equality bundles: one round-trip per chunk on
// a BatchAPI, per-call loops otherwise.
func (c *Client) nodePolysBatch(pres []int64) ([]NodePolys, error) {
	return batchOrFallback(c, pres, polyChunkSize,
		func(b BatchAPI, part []int64) ([]NodePolys, error) { return b.NodePolysBatch(part) },
		func(pres []int64) ([]NodePolys, error) {
			return perCallNodePolys(pres, c.api.Poly, c.api.ChildrenPolys)
		})
}

// EqualsBatch runs the strict equality test for every check with a single
// server exchange fetching all share rows; reconstructions run in
// parallel on the client worker pool.
func (c *Client) EqualsBatch(checks []Check) ([]bool, error) {
	if len(checks) == 0 {
		return nil, nil
	}
	pres := make([]int64, len(checks))
	for i, ch := range checks {
		pres[i] = ch.Pre
	}
	bundles, err := c.nodePolysBatch(pres)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(checks))
	errs := make([]error, len(checks))
	var recons atomic.Int64
	parallelFor(len(checks), c.poolSize(), func(i int) {
		b := bundles[i]
		if b.Err != "" {
			errs[i] = errors.New(b.Err)
			return
		}
		ok, n, err := c.equalsFromBundle(checks[i].Pre, checks[i].Point, b)
		if err != nil {
			errs[i] = err
			return
		}
		recons.Add(n)
		out[i] = ok
	})
	c.Counters.Reconstructions.Add(recons.Load())
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// equalsFromBundle is the client half of one strict test, given the
// fetched share rows; n reports the reconstructions performed. The
// whole check runs on pooled buffers: each blob decodes into a scratch
// polynomial that is reconstructed in place, the child product
// ping-pongs between two pooled accumulators, and everything returns to
// the pool on exit — an equality test performs no polynomial
// allocations.
func (c *Client) equalsFromBundle(pre int64, val gf.Elem, b NodePolys) (ok bool, n int64, err error) {
	r := c.r
	full := r.GetPoly()
	defer r.PutPoly(full)
	if err := r.DecodeInto(full, b.Node.Poly); err != nil {
		return false, 0, decodeErr(pre, err)
	}
	c.Counters.Decodes.Add(1)
	c.scheme.ReconstructInto(full, full, uint64(pre))
	n = 1
	prod, tmp, child := r.GetPoly(), r.GetPoly(), r.GetPoly()
	defer r.PutPoly(prod)
	defer r.PutPoly(tmp)
	defer r.PutPoly(child)
	prod[0] = 1 // the constant polynomial 1
	for _, ch := range b.Children {
		if err := r.DecodeInto(child, ch.Poly); err != nil {
			return false, n, decodeErr(ch.Pre, err)
		}
		c.Counters.Decodes.Add(1)
		n++
		c.scheme.ReconstructInto(child, child, uint64(ch.Pre))
		prod, tmp = r.MulInto(tmp, prod, child), prod
	}
	return r.Equal(full, r.MulLinearInto(tmp, prod, val)), n, nil
}

// NodeBatch fetches the metadata of every listed node in one exchange
// (falling back to per-call fetches on a plain ServerAPI).
func (c *Client) NodeBatch(pres []int64) ([]NodeMeta, error) {
	if len(pres) == 0 {
		return nil, nil
	}
	out, err := batchOrFallback(c, pres, metaChunkSize,
		func(b BatchAPI, part []int64) ([]NodeMeta, error) { return b.NodeBatch(part) },
		func(pres []int64) ([]NodeMeta, error) { return perCallEach(pres, c.api.Node) })
	if err != nil {
		return nil, err
	}
	c.Counters.NodesFetched.Add(int64(len(out)))
	return out, nil
}

// ChildrenBatch fetches the children of every listed node in one
// exchange (falling back to per-call fetches on a plain ServerAPI).
func (c *Client) ChildrenBatch(pres []int64) ([][]NodeMeta, error) {
	if len(pres) == 0 {
		return nil, nil
	}
	out, err := batchOrFallback(c, pres, childrenChunkSize,
		func(b BatchAPI, part []int64) ([][]NodeMeta, error) { return b.ChildrenBatch(part) },
		func(pres []int64) ([][]NodeMeta, error) { return perCallEach(pres, c.api.Children) })
	if err != nil {
		return nil, err
	}
	var total int64
	for _, ms := range out {
		total += int64(len(ms))
	}
	c.Counters.NodesFetched.Add(total)
	return out, nil
}

// DescendantsBatch fetches the proper descendants of every span in one
// exchange (falling back to per-call fetches on a plain ServerAPI).
func (c *Client) DescendantsBatch(spans []Span) ([][]NodeMeta, error) {
	if len(spans) == 0 {
		return nil, nil
	}
	out, err := batchOrFallback(c, spans, descChunkSize,
		func(b BatchAPI, part []Span) ([][]NodeMeta, error) { return b.DescendantsBatch(part) },
		func(spans []Span) ([][]NodeMeta, error) {
			return perCallEach(spans, func(sp Span) ([]NodeMeta, error) {
				return c.api.Descendants(sp.Pre, sp.Post)
			})
		})
	if err != nil {
		return nil, err
	}
	var total int64
	for _, ms := range out {
		total += int64(len(ms))
	}
	c.Counters.NodesFetched.Add(total)
	return out, nil
}

func decodeErr(pre int64, err error) error {
	return fmt.Errorf("filter: decoding poly of %d: %w", pre, err)
}
