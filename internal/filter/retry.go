// Retryable-error classification for replicated deployments.
//
// Shard replicas are byte-identical copies of the same uniformly random
// share table, so any read answered by one replica is answered
// identically by all of them. That makes failover a pure transport
// question: an error is worth retrying on another replica exactly when
// it says nothing about the data — the connection died, the reply never
// came, or the reply violated the batch/paged protocol (a buggy or
// malicious replica). A deterministic handler error (row not found,
// decode failure) would repeat on every copy and must surface to the
// caller instead of burning the remaining replicas.
//
// The classification matters mid-paged-reply too: the paged protocols in
// paged.go loop several exchanges per logical batch, and a replica dying
// between pages surfaces as a transport error from an inner page call.
// The whole logical batch is what the cluster layer retries — the next
// replica restarts the page loop from member 0 and, shares being
// immutable, reproduces the identical reply.
package filter

import (
	"errors"

	"encshare/internal/rmi"
)

// BadReplyError reports a reply that violated the batch or paged
// protocol: wrong member count, a page cursor that went backwards, a
// member index outside the request. The server is untrusted, so these
// are protocol errors rather than panics — and against a replicated
// shard they are retryable, because a healthy replica will not repeat a
// misbehaving one's framing.
type BadReplyError struct{ Msg string }

func (e *BadReplyError) Error() string { return "filter: bad reply: " + e.Msg }

// Retryable reports whether err may be cured by reissuing the call
// against a different replica of the same (immutable) shard data:
// transport failures and protocol-violating replies are; deterministic
// handler errors are not.
func Retryable(err error) bool {
	var te *rmi.TransportError
	if errors.As(err, &te) {
		return true
	}
	var be *BadReplyError
	if errors.As(err, &be) {
		return true
	}
	// A stale-epoch fence is retryable by contract: the data moved, not
	// broke. Sibling replicas of a current shard answer the same frame
	// fine, and the session layer re-pins and reruns the query when the
	// whole replica set is ahead of the pin.
	if IsStaleEpoch(err) {
		return true
	}
	// A WAL-failure refusal names a replica whose disk is sick, not bad
	// data: the batch was refused before journaling, so a healthy
	// sibling replica accepts the identical bytes — fail over to it.
	return IsWALFailed(err)
}
