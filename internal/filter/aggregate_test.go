package filter

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"encshare/internal/gf"
	"encshare/internal/ring"
	"encshare/internal/rmi"
	"encshare/internal/xmldoc"
)

// --- row-list codec ----------------------------------------------------

func TestPackPresRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{0},
		{5},
		{0, 1, 2, 3},
		{1, 2, 5, 100, 10_000, 1 << 40},
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var pres []int64
		p := int64(rng.Intn(5))
		for k := 0; k < rng.Intn(200); k++ {
			pres = append(pres, p)
			p += 1 + int64(rng.Intn(50))
		}
		cases = append(cases, pres)
	}
	for _, pres := range cases {
		got, err := UnpackPres(PackPres(pres))
		if err != nil {
			t.Fatalf("UnpackPres(PackPres(%v)): %v", pres, err)
		}
		if len(got) != len(pres) {
			t.Fatalf("round trip changed length: %d -> %d", len(pres), len(got))
		}
		for i := range pres {
			if got[i] != pres[i] {
				t.Fatalf("round trip changed pres[%d]: %d -> %d", i, pres[i], got[i])
			}
		}
	}
}

func TestUnpackPresRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty input":       {},
		"oversized count":   {0xff, 0xff, 0xff, 0xff, 0x7f}, // ~34 billion rows
		"bytes cannot hold": {5, 1, 1},                      // claims 5 rows, two deltas
		"truncated delta":   append([]byte{2, 1}, 0x80),     // second delta never ends
		"zero delta":        {2, 1, 0},                      // positions not strictly increasing
		"trailing bytes":    append(PackPres([]int64{1, 2}), 0x01),
		"overflow": func() []byte {
			b := []byte{2}
			// first delta lands near MaxInt64, second pushes past it
			b = append(b, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
			b = append(b, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
			return b
		}(),
	}
	for name, b := range cases {
		if _, err := UnpackPres(b); err == nil {
			t.Errorf("%s: UnpackPres accepted malformed input % x", name, b)
		}
	}
}

// --- fixtures ----------------------------------------------------------

// presNamed returns the sorted pre positions of every node named name.
func (fx *fixture) presNamed(name string) []int64 {
	var out []int64
	fx.doc.Walk(func(n *xmldoc.Node) bool {
		if n.Name == name {
			out = append(out, n.Pre)
		}
		return true
	})
	return out
}

// oracleSum reconstructs every row client-side and sums — the
// pre-aggregate protocol, used as the ground truth for every fold.
func oracleSum(t *testing.T, cli *Client, pres []int64) ring.Poly {
	t.Helper()
	r := cli.r
	total := r.NewPoly()
	for _, pre := range pres {
		p, err := cli.Reconstruct(pre)
		if err != nil {
			t.Fatal(err)
		}
		r.AddInPlace(total, p)
	}
	return total
}

// --- fold parity -------------------------------------------------------

// TestAggregateFoldParity is the core parity grid at the filter layer:
// local and remote backends, verified and unverified, several chunk
// bounds, COUNT and SUM against the client-reconstruct oracle.
func TestAggregateFoldParity(t *testing.T) {
	fx := newFixture(t, testXML)
	itemPoint := fx.val(t, "item")
	rowSets := map[string][]int64{
		"items":    fx.presNamed("item"),
		"names":    fx.presNamed("name"),
		"everyone": fx.presNamed("item"), // reused below with all rows appended
	}
	fx.doc.Walk(func(n *xmldoc.Node) bool {
		rowSets["everyone"] = append(rowSets["everyone"], n.Pre)
		return true
	})

	for cliName, cli := range map[string]*Client{"local": fx.local, "remote": fx.remote} {
		for setName, pres := range rowSets {
			want := oracleSum(t, cli, sortedDedup(pres))
			for _, opts := range []AggregateOptions{
				{},
				{NoVerify: true},
				{ChunkRows: 1},
				{ChunkRows: 2},
				{ChunkRows: 3, NoVerify: true},
			} {
				if setName == "items" {
					// all rows share the name, so the known-root check applies
					opts.CheckPoint = itemPoint
				}
				agg, err := cli.AggregateFold(pres, AggSum, opts)
				if err != nil {
					t.Fatalf("%s/%s/%+v: %v", cliName, setName, opts, err)
				}
				if !cli.r.Equal(agg.Sum, want) {
					t.Fatalf("%s/%s/%+v: folded sum != reconstruct oracle", cliName, setName, opts)
				}
				if !agg.Folded {
					t.Fatalf("%s/%s: fold fell back to reconstruction", cliName, setName)
				}
				if agg.Verified != !opts.NoVerify {
					t.Fatalf("%s/%s/%+v: Verified = %v", cliName, setName, opts, agg.Verified)
				}
				cnt, err := cli.AggregateFold(pres, AggCount, opts)
				if err != nil {
					t.Fatal(err)
				}
				if cnt.Count != int64(len(sortedDedup(pres))) {
					t.Fatalf("%s/%s: COUNT = %d, want %d", cliName, setName, cnt.Count, len(sortedDedup(pres)))
				}
				if cnt.Sum != nil {
					t.Fatalf("%s/%s: COUNT carried a sum polynomial", cliName, setName)
				}
			}
		}
	}
}

// TestAggregateFoldUnsortedInput: the fold must accept rows in any order
// with duplicates and still agree with the set semantics.
func TestAggregateFoldUnsortedInput(t *testing.T) {
	fx := newFixture(t, testXML)
	pres := fx.presNamed("item")
	shuffled := []int64{pres[1], pres[0], pres[1], pres[0], pres[0]}
	want := oracleSum(t, fx.local, pres)
	agg, err := fx.local.AggregateFold(shuffled, AggSum, AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != int64(len(pres)) {
		t.Fatalf("Count = %d, want %d (duplicates not collapsed)", agg.Count, len(pres))
	}
	if !fx.r.Equal(agg.Sum, want) {
		t.Fatal("fold over shuffled duplicate input != set oracle")
	}
}

func TestAggregateFoldEmpty(t *testing.T) {
	fx := newFixture(t, testXML)
	agg, err := fx.local.AggregateFold(nil, AggSum, AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Count != 0 || !fx.r.IsZero(agg.Sum) || !agg.Folded {
		t.Fatalf("empty fold: count=%d, zero=%v, folded=%v", agg.Count, fx.r.IsZero(agg.Sum), agg.Folded)
	}
	if _, err := fx.local.AggregateFold(nil, AggAvg, AggregateOptions{}); !errors.As(err, new(*AvgUndefinedError)) {
		t.Fatalf("AVG over zero rows: err = %v, want AvgUndefinedError", err)
	}
}

// TestAggregateWraparound drives row counts past q: the fold must chunk
// below q rows so the exact count survives, for every chunk bound.
func TestAggregateWraparound(t *testing.T) {
	const rows = 180 // > 2q for q = 83
	fx := newFixture(t, wideXML(rows))
	pres := fx.presNamed("item")
	if len(pres) != rows {
		t.Fatalf("fixture has %d items, want %d", len(pres), rows)
	}
	want := oracleSum(t, fx.local, pres)
	for _, chunkRows := range []int{0, 1, 41, 82, 5000} {
		for _, cli := range []*Client{fx.local, fx.remote} {
			agg, err := cli.AggregateFold(pres, AggSum, AggregateOptions{
				ChunkRows:  chunkRows,
				CheckPoint: fx.val(t, "item"),
			})
			if err != nil {
				t.Fatalf("chunkRows=%d: %v", chunkRows, err)
			}
			if agg.Count != rows {
				t.Fatalf("chunkRows=%d: Count = %d, want %d (wraparound leaked)", chunkRows, agg.Count, rows)
			}
			if !cli.r.Equal(agg.Sum, want) {
				t.Fatalf("chunkRows=%d: folded sum != oracle", chunkRows)
			}
		}
	}
	// 180 mod 83 = 14: a fold that trusted field counts would report 14.
	if rows%83 == int(rows) {
		t.Fatal("test misconfigured: row count does not wrap")
	}
}

// TestAggregateMultiFrame shrinks the request window so one fold spans
// several request frames, which must still tile and verify.
func TestAggregateMultiFrame(t *testing.T) {
	old := aggReqChunkSize
	aggReqChunkSize = 16
	defer func() { aggReqChunkSize = old }()

	fx := newFixture(t, wideXML(100))
	pres := fx.presNamed("item")
	want := oracleSum(t, fx.remote, pres)
	agg, err := fx.remote.AggregateFold(pres, AggSum, AggregateOptions{CheckPoint: fx.val(t, "item")})
	if err != nil {
		t.Fatal(err)
	}
	if !fx.r.Equal(agg.Sum, want) || agg.Count != 100 || !agg.Verified {
		t.Fatalf("multi-frame fold: count=%d verified=%v parity=%v",
			agg.Count, agg.Verified, fx.r.Equal(agg.Sum, want))
	}
}

func TestAggregateAvg(t *testing.T) {
	fx := newFixture(t, testXML)
	pres := fx.presNamed("item") // 2 rows
	agg, err := fx.local.AggregateFold(pres, AggAvg, AggregateOptions{CheckPoint: fx.val(t, "item")})
	if err != nil {
		t.Fatal(err)
	}
	f := fx.r.Field()
	want := fx.r.AddScaledInPlace(fx.r.NewPoly(), oracleSum(t, fx.local, pres), f.Inv(gf.Elem(len(pres))))
	if !fx.r.Equal(agg.Avg, want) {
		t.Fatal("AVG != SUM · count⁻¹")
	}

	// 83 rows ≡ 0 (mod 83): the divisor vanishes even though rows > 0.
	wide := newFixture(t, wideXML(83))
	var ue *AvgUndefinedError
	if _, err := wide.local.AggregateFold(wide.presNamed("item"), AggAvg, AggregateOptions{}); !errors.As(err, &ue) {
		t.Fatalf("AVG over q rows: err = %v, want AvgUndefinedError", err)
	} else if ue.Count != 83 || ue.Q != 83 {
		t.Fatalf("AvgUndefinedError carries %d/%d, want 83/83", ue.Count, ue.Q)
	}
}

// --- server-side frame validation --------------------------------------

func TestAggregateBatchRejectsBadFrames(t *testing.T) {
	fx := newFixture(t, testXML)
	good := AggregateRequest{
		Ver:  AggregateFrameVersion,
		Kind: wireAggSum,
		Pres: PackPres(fx.presNamed("item")),
	}
	cases := map[string]func(r *AggregateRequest){
		"future version": func(r *AggregateRequest) { r.Ver = AggregateFrameVersion + 1 },
		"zero version":   func(r *AggregateRequest) { r.Ver = 0 },
		"unknown kind":   func(r *AggregateRequest) { r.Kind = 99 },
		"garbage rows":   func(r *AggregateRequest) { r.Pres = []byte{0xff} },
		"short mask":     func(r *AggregateRequest) { r.Mask = []gf.Elem{1} },
		"zero mask elem": func(r *AggregateRequest) { r.Mask = []gf.Elem{1, 0} },
		"mask elem >= q": func(r *AggregateRequest) { r.Mask = []gf.Elem{1, 83} },
	}
	for name, mutate := range cases {
		req := good
		mutate(&req)
		if _, err := fx.server.AggregateBatch(req); err == nil {
			t.Errorf("%s: server accepted the frame", name)
		}
	}
	// The unmutated frame is fine — the cases above fail for their own
	// reasons, not because the fixture is broken.
	if _, err := fx.server.AggregateBatch(good); err != nil {
		t.Fatalf("control frame rejected: %v", err)
	}
}

func TestAggregateBatchMissingRow(t *testing.T) {
	fx := newFixture(t, testXML)
	for _, kind := range []uint8{wireAggCount, wireAggSum} {
		req := AggregateRequest{
			Ver:  AggregateFrameVersion,
			Kind: kind,
			Pres: PackPres([]int64{1, 1 << 40}), // second row does not exist
		}
		if _, err := fx.server.AggregateBatch(req); err == nil {
			t.Errorf("kind %d: fold over a missing row succeeded", kind)
		}
	}
}

// TestAggregateBatchPure: shares are immutable, so replaying the same
// frame must reproduce the same reply byte for byte — the property that
// makes duplicated (hedged/retried) frames safe.
func TestAggregateBatchPure(t *testing.T) {
	fx := newFixture(t, wideXML(50))
	req := AggregateRequest{
		Ver:       AggregateFrameVersion,
		Kind:      wireAggSum,
		Pres:      PackPres(fx.presNamed("item")),
		Mask:      make([]gf.Elem, 50),
		ChunkRows: 7,
	}
	for i := range req.Mask {
		req.Mask[i] = gf.Elem(1 + i%82)
	}
	first, err := fx.server.AggregateBatch(req)
	if err != nil {
		t.Fatal(err)
	}
	for replay := 0; replay < 3; replay++ {
		again, err := fx.server.AggregateBatch(req)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%+v", again) != fmt.Sprintf("%+v", first) {
			t.Fatalf("replay %d produced a different reply", replay)
		}
	}
}

// --- tamper detection --------------------------------------------------

// tamperAPI wraps the in-process server and lets each test corrupt the
// aggregate reply in flight — the deterministic stand-in for a
// malicious or buggy shard.
type tamperAPI struct {
	ServerAPI
	inner  AggregateAPI
	mutate func(*AggregateReply)
}

func (a *tamperAPI) AggregateBatch(req AggregateRequest) (AggregateReply, error) {
	reply, err := a.inner.AggregateBatch(req)
	if err != nil {
		return reply, err
	}
	a.mutate(&reply)
	return reply, nil
}

func TestAggregateTamperDetection(t *testing.T) {
	fx := newFixture(t, wideXML(60))
	pres := fx.presNamed("item")
	point := fx.val(t, "item")

	cases := map[string]func(*AggregateReply){
		"corrupt sum blob": func(r *AggregateReply) {
			r.Chunks[0].Sum[0] ^= 1
		},
		"corrupt verification blob": func(r *AggregateReply) {
			r.Chunks[1].MaskSum[3] ^= 0x40
		},
		"swap chunk sums": func(r *AggregateReply) {
			r.Chunks[0].Sum, r.Chunks[1].Sum = r.Chunks[1].Sum, r.Chunks[0].Sum
		},
		"inflate count": func(r *AggregateReply) {
			r.Chunks[0].Count++
		},
		"inflate masked count": func(r *AggregateReply) {
			r.Chunks[0].MaskCnt = fx.r.Field().Add(r.Chunks[0].MaskCnt, 1)
		},
		"drop chunk": func(r *AggregateReply) {
			r.Chunks = r.Chunks[:len(r.Chunks)-1]
		},
		"merge rows": func(r *AggregateReply) {
			r.Chunks[0].Rows += r.Chunks[1].Rows
		},
		"shift bounds": func(r *AggregateReply) {
			r.Chunks[0].FirstPre++
		},
	}
	for name, mutate := range cases {
		cli := NewClient(&tamperAPI{ServerAPI: fx.server, inner: fx.server, mutate: mutate}, fx.scheme)
		_, err := cli.AggregateFold(pres, AggSum, AggregateOptions{ChunkRows: 20, CheckPoint: point})
		var ie *IntegrityError
		if !errors.As(err, &ie) {
			t.Errorf("%s: err = %v, want IntegrityError", name, err)
			continue
		}
		// Integrity failures are evidence, not transient faults.
		if Retryable(err) {
			t.Errorf("%s: IntegrityError classified retryable", name)
		}
	}

	// Control: the identity mutation passes every check.
	cli := NewClient(&tamperAPI{ServerAPI: fx.server, inner: fx.server, mutate: func(*AggregateReply) {}}, fx.scheme)
	agg, err := cli.AggregateFold(pres, AggSum, AggregateOptions{ChunkRows: 20, CheckPoint: point})
	if err != nil {
		t.Fatalf("untampered reply rejected: %v", err)
	}
	if !agg.Verified {
		t.Fatal("untampered fold not marked verified")
	}
}

// TestAggregateTamperNeedsCheckPoint documents the detection boundary:
// without a known root to check against (CheckPoint == 0), a corrupted
// but well-formed sum blob is NOT detectable — the count and tiling
// checks still run, but value integrity needs the root invariant.
func TestAggregateTamperNeedsCheckPoint(t *testing.T) {
	fx := newFixture(t, wideXML(30))
	pres := fx.presNamed("item")
	evil := func(r *AggregateReply) {
		// Re-encode a valid but wrong polynomial, so the decode succeeds.
		fake := fx.r.Linear(5)
		r.Chunks[0].Sum = fx.r.AppendBytes(nil, fake)
	}
	cli := NewClient(&tamperAPI{ServerAPI: fx.server, inner: fx.server, mutate: evil}, fx.scheme)
	if _, err := cli.AggregateFold(pres, AggSum, AggregateOptions{}); err != nil {
		t.Fatalf("expected undetected tamper without CheckPoint, got %v", err)
	}
	if _, err := cli.AggregateFold(pres, AggSum, AggregateOptions{CheckPoint: fx.val(t, "item")}); err == nil {
		t.Fatal("tamper with CheckPoint set went undetected")
	}
}

// --- downgrade ---------------------------------------------------------

// legacyAPI hides the aggregate extension: the shape of a pre-aggregate
// in-process backend.
type legacyAPI struct{ ServerAPI }

func TestAggregateDowngradeInProcess(t *testing.T) {
	fx := newFixture(t, testXML)
	pres := fx.presNamed("item")
	cli := NewClient(legacyAPI{fx.server}, fx.scheme)
	want := oracleSum(t, cli, pres)
	agg, err := cli.AggregateFold(pres, AggSum, AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Folded || agg.Verified {
		t.Fatalf("legacy backend: Folded=%v Verified=%v, want false/false", agg.Folded, agg.Verified)
	}
	if !fx.r.Equal(agg.Sum, want) {
		t.Fatal("reconstruct fallback != oracle")
	}
}

// TestAggregateDowngradeRemote runs the fold against an rmi server that
// registered a pre-aggregate API: the first frame answers "unknown
// method", the client reconstructs rows instead, and later folds skip
// straight to the fallback without re-probing.
func TestAggregateDowngradeRemote(t *testing.T) {
	fx := newFixture(t, wideXML(40))
	srv := rmi.NewServer()
	RegisterServer(srv, legacyAPI{fx.server}) // no AggregateAPI ⇒ no aggregate method
	rc := rmi.Pipe(srv)
	t.Cleanup(func() { rc.Close() })
	remote := NewRemote(rc)
	cli := NewClient(remote, fx.scheme)

	pres := fx.presNamed("item")
	want := oracleSum(t, fx.local, pres)
	agg, err := cli.AggregateFold(pres, AggSum, AggregateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Folded {
		t.Fatal("old server reported a fold")
	}
	if !fx.r.Equal(agg.Sum, want) {
		t.Fatal("downgraded fold != oracle")
	}
	// The fallback is O(rows): one Poly exchange per row plus the single
	// rejected probe.
	calls := rc.Stats().Calls
	if calls < int64(len(pres)) {
		t.Fatalf("fallback made %d calls for %d rows", calls, len(pres))
	}

	// Second fold: the unsupported flag short-circuits the probe.
	before := rc.Stats().Calls
	if _, err := cli.AggregateFold(pres, AggCount, AggregateOptions{}); err != nil {
		t.Fatal(err)
	}
	if got := rc.Stats().Calls - before; got != 0 {
		t.Fatalf("COUNT fallback cost %d exchanges, want 0 (client already has the rows)", got)
	}
}

// TestAggregateRemoteCheap pins the whole point of the fold frames: a
// SUM over n rows must cost O(chunks) exchanges, not O(rows).
func TestAggregateRemoteCheap(t *testing.T) {
	fx := newFixture(t, wideXML(164)) // exactly 2 max-size chunks for q=83
	pres := fx.presNamed("item")
	before := fx.rmiCli.Stats().Calls
	agg, err := fx.remote.AggregateFold(pres, AggSum, AggregateOptions{CheckPoint: fx.val(t, "item")})
	if err != nil {
		t.Fatal(err)
	}
	if calls := fx.rmiCli.Stats().Calls - before; calls != 1 {
		t.Fatalf("fold cost %d exchanges for %d rows, want 1", calls, len(pres))
	}
	if agg.Count != 164 || !agg.Verified {
		t.Fatalf("count=%d verified=%v", agg.Count, agg.Verified)
	}
}
