package filter

import (
	"bytes"
	"testing"
)

func testBatch() MutationBatch {
	return MutationBatch{
		Ver: MutationBatchVersion,
		Seq: 7,
		Ops: []RowOp{
			{Kind: OpPut, Pre: 42, Post: 41, Parent: 3, Blob: []byte{1, 2, 3, 0, 255}},
			{Kind: OpPatch, Pre: 9, NewPre: 10, PostDelta: 1, ParentMin: 42, ParentDelta: -1},
			{Kind: OpPatch, Pre: 3, PostDelta: -1, Blob: []byte{8}},
			{Kind: OpDelete, Pre: 11},
		},
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	want := testBatch()
	data, err := EncodeBatch(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ver != want.Ver || got.Seq != want.Seq || len(got.Ops) != len(want.Ops) {
		t.Fatalf("header mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Ops {
		w, g := want.Ops[i], got.Ops[i]
		if g.Kind != w.Kind || g.Pre != w.Pre || g.Post != w.Post || g.Parent != w.Parent ||
			g.NewPre != w.NewPre || g.PostDelta != w.PostDelta ||
			g.ParentMin != w.ParentMin || g.ParentDelta != w.ParentDelta ||
			!bytes.Equal(g.Blob, w.Blob) {
			t.Fatalf("op %d: %+v vs %+v", i, g, w)
		}
	}
	// Empty batch round-trips too (a no-op batch is legal).
	data, err = EncodeBatch(MutationBatch{Ver: 1, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b, err := DecodeBatch(data); err != nil || len(b.Ops) != 0 {
		t.Fatalf("empty batch: %+v, %v", b, err)
	}
}

// TestBatchCodecDeterministic pins the property the replica byte-diff
// depends on: equal batches encode to equal bytes, with no process
// state (unlike gob, whose type IDs depend on global first-encode
// order) leaking into the stream.
func TestBatchCodecDeterministic(t *testing.T) {
	a, err := EncodeBatch(testBatch())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeBatch(testBatch())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same batch encoded to different bytes")
	}
}

func TestDecodeBatchCorrupt(t *testing.T) {
	valid, err := EncodeBatch(testBatch())
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix of a valid encoding must fail cleanly, not
	// decode to something else (the wal layer already guarantees whole
	// records; this guards the codec itself).
	for i := 0; i < len(valid); i++ {
		if _, err := DecodeBatch(valid[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded", i, len(valid))
		}
	}
	if _, err := DecodeBatch(append(append([]byte(nil), valid...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A blob length pointing past the end must error, not allocate.
	huge := []byte{1, 1, 1, OpPut, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := DecodeBatch(huge); err == nil {
		t.Fatal("oversized blob length accepted")
	}
}

// FuzzDecodeBatch asserts DecodeBatch never panics, and that whatever
// it accepts re-encodes to a value it accepts again identically (the
// replay path's stability property).
func FuzzDecodeBatch(f *testing.F) {
	seed, _ := EncodeBatch(testBatch())
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{1, 1, 1, OpPut})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		enc, err := EncodeBatch(b)
		if err != nil {
			t.Fatalf("re-encode of accepted batch failed: %v", err)
		}
		b2, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		enc2, _ := EncodeBatch(b2)
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding not a fixed point")
		}
	})
}
