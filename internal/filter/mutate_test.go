package filter

import (
	"bytes"
	"testing"

	"encshare/internal/rmi"
)

func testBatch() MutationBatch {
	return MutationBatch{
		Ver: MutationBatchVersion,
		Seq: 7,
		Ops: []RowOp{
			{Kind: OpPut, Pre: 42, Post: 41, Parent: 3, Blob: []byte{1, 2, 3, 0, 255}},
			{Kind: OpPatch, Pre: 9, NewPre: 10, PostDelta: 1, ParentMin: 42, ParentDelta: -1},
			{Kind: OpPatch, Pre: 3, PostDelta: -1, Blob: []byte{8}},
			{Kind: OpDelete, Pre: 11},
		},
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	want := testBatch()
	data, err := EncodeBatch(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ver != want.Ver || got.Seq != want.Seq || len(got.Ops) != len(want.Ops) {
		t.Fatalf("header mismatch: %+v vs %+v", got, want)
	}
	for i := range want.Ops {
		w, g := want.Ops[i], got.Ops[i]
		if g.Kind != w.Kind || g.Pre != w.Pre || g.Post != w.Post || g.Parent != w.Parent ||
			g.NewPre != w.NewPre || g.PostDelta != w.PostDelta ||
			g.ParentMin != w.ParentMin || g.ParentDelta != w.ParentDelta ||
			!bytes.Equal(g.Blob, w.Blob) {
			t.Fatalf("op %d: %+v vs %+v", i, g, w)
		}
	}
	// Empty batch round-trips too (a no-op batch is legal).
	data, err = EncodeBatch(MutationBatch{Ver: 1, Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b, err := DecodeBatch(data); err != nil || len(b.Ops) != 0 {
		t.Fatalf("empty batch: %+v, %v", b, err)
	}
}

// TestBatchCodecDeterministic pins the property the replica byte-diff
// depends on: equal batches encode to equal bytes, with no process
// state (unlike gob, whose type IDs depend on global first-encode
// order) leaking into the stream.
func TestBatchCodecDeterministic(t *testing.T) {
	a, err := EncodeBatch(testBatch())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeBatch(testBatch())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same batch encoded to different bytes")
	}
}

func TestDecodeBatchCorrupt(t *testing.T) {
	valid, err := EncodeBatch(testBatch())
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix of a valid encoding must fail cleanly, not
	// decode to something else (the wal layer already guarantees whole
	// records; this guards the codec itself).
	for i := 0; i < len(valid); i++ {
		if _, err := DecodeBatch(valid[:i]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded", i, len(valid))
		}
	}
	if _, err := DecodeBatch(append(append([]byte(nil), valid...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A blob length pointing past the end must error, not allocate.
	huge := []byte{1, 1, 1, OpPut, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := DecodeBatch(huge); err == nil {
		t.Fatal("oversized blob length accepted")
	}
}

// TestMutateDigestVerifiesRedelivery pins the idempotent-ack digest
// check: redelivering the batch that consumed a sequence acks cleanly,
// while a DIFFERENT batch colliding with a consumed sequence gets a
// typed, non-retryable BatchMismatchError instead of a false ack.
func TestMutateDigestVerifiesRedelivery(t *testing.T) {
	fx := newFixture(t, testXML)
	m := NewMutable(fx.server, 0, nil, nil)

	// A no-op patch (empty blob, no renumbering) keeps the table
	// untouched while still consuming sequences.
	b1 := MutationBatch{Ver: MutationBatchVersion, Seq: 1, Ops: []RowOp{{Kind: OpPatch, Pre: 2}}}
	if _, err := m.Mutate(b1); err != nil {
		t.Fatal(err)
	}
	reply, err := m.Mutate(b1)
	if err != nil {
		t.Fatalf("exact redelivery: %v", err)
	}
	if reply.LastSeq != 1 {
		t.Fatalf("redelivery ack LastSeq = %d, want 1", reply.LastSeq)
	}
	collide := MutationBatch{Ver: MutationBatchVersion, Seq: 1, Ops: []RowOp{{Kind: OpPatch, Pre: 3}}}
	if _, err := m.Mutate(collide); !IsBatchMismatch(err) {
		t.Fatalf("colliding batch got %v, want BatchMismatchError", err)
	} else if Retryable(err) {
		t.Fatal("BatchMismatchError must not be retryable")
	}

	// The rejection must survive the RMI boundary as a matchable error.
	srv := rmi.NewServer()
	RegisterServer(srv, m)
	cli := rmi.Pipe(srv)
	defer cli.Close()
	if _, err := NewRemote(cli).Mutate(collide); !IsBatchMismatch(err) {
		t.Fatalf("over the wire: got %v, want batch mismatch", err)
	}

	// Replay seeds the history: a restarted server verifies pre-crash
	// sequences too.
	m2 := NewMutable(fx.server, 0, nil, nil)
	if err := m2.Replay(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Mutate(collide); !IsBatchMismatch(err) {
		t.Fatalf("after replay: got %v, want BatchMismatchError", err)
	}
	if _, err := m2.Mutate(b1); err != nil {
		t.Fatalf("exact redelivery after replay: %v", err)
	}
}

// TestMutateDigestWindow pins the window semantics: a sequence older
// than digestWindow is acknowledged unverified (the digest is gone),
// while anything inside the window is still checked.
func TestMutateDigestWindow(t *testing.T) {
	fx := newFixture(t, testXML)
	m := NewMutable(fx.server, 0, nil, nil)
	total := uint64(digestWindow + 2)
	for seq := uint64(1); seq <= total; seq++ {
		if _, err := m.Mutate(MutationBatch{Ver: MutationBatchVersion, Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	// Seq 1 fell out of the window: a differing batch acks unverified.
	old := MutationBatch{Ver: MutationBatchVersion, Seq: 1, Ops: []RowOp{{Kind: OpPatch, Pre: 2}}}
	if _, err := m.Mutate(old); err != nil {
		t.Fatalf("out-of-window redelivery: %v", err)
	}
	// The oldest retained sequence is still verified.
	oldest := total - digestWindow + 1
	inWindow := MutationBatch{Ver: MutationBatchVersion, Seq: oldest, Ops: []RowOp{{Kind: OpPatch, Pre: 2}}}
	if _, err := m.Mutate(inWindow); !IsBatchMismatch(err) {
		t.Fatalf("in-window collision got %v, want BatchMismatchError", err)
	}
}

// FuzzDecodeBatch asserts DecodeBatch never panics, and that whatever
// it accepts re-encodes to a value it accepts again identically (the
// replay path's stability property).
func FuzzDecodeBatch(f *testing.F) {
	seed, _ := EncodeBatch(testBatch())
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{1, 1, 1, OpPut})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		enc, err := EncodeBatch(b)
		if err != nil {
			t.Fatalf("re-encode of accepted batch failed: %v", err)
		}
		b2, err := DecodeBatch(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		enc2, _ := EncodeBatch(b2)
		if !bytes.Equal(enc, enc2) {
			t.Fatal("canonical encoding not a fixed point")
		}
	})
}
