package filter

import (
	"testing"
	"time"

	"encshare/internal/rmi"
)

// leaseClock is a hand-cranked lease clock for deterministic expiry.
type leaseClock struct{ now int64 }

func (c *leaseClock) advance(d time.Duration) { c.now += int64(d) }

func newLeasedMutable(t *testing.T) (*Mutable, *leaseClock) {
	t.Helper()
	fx := newFixture(t, testXML)
	m := NewMutable(fx.server, 0, nil, nil)
	clk := &leaseClock{}
	m.SetLeaseClock(func() int64 { return clk.now })
	return m, clk
}

// TestLeaseAcquireExtendTransfer pins the fencing-ID semantics: stable
// across one owner's extensions and release/re-acquire cycles, bumped
// on every true transfer (voluntary or by expiry takeover).
func TestLeaseAcquireExtendTransfer(t *testing.T) {
	m, clk := newLeasedMutable(t)

	ga, err := m.AcquireLease(LeaseRequest{Owner: "a", TTLMillis: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if ga.ID == 0 {
		t.Fatal("grant without a fencing ID")
	}

	// Same owner re-acquires: TTL extends, ID stays.
	clk.advance(500 * time.Millisecond)
	ga2, err := m.AcquireLease(LeaseRequest{Owner: "a", TTLMillis: 1000})
	if err != nil {
		t.Fatalf("same-owner extension: %v", err)
	}
	if ga2.ID != ga.ID {
		t.Fatalf("extension bumped the lease ID: %d -> %d", ga.ID, ga2.ID)
	}

	// Another owner against a live lease: typed refusal with the
	// remaining TTL, matchable over the wire too.
	_, err = m.AcquireLease(LeaseRequest{Owner: "b", TTLMillis: 1000})
	if !IsLeaseHeld(err) {
		t.Fatalf("held lease got %v, want LeaseHeldError", err)
	}
	srv := rmi.NewServer()
	RegisterServer(srv, m)
	cli := rmi.Pipe(srv)
	defer cli.Close()
	if _, err := NewRemote(cli).AcquireLease(LeaseRequest{Owner: "b", TTLMillis: 1000}); !IsLeaseHeld(err) {
		t.Fatalf("over the wire: got %v, want lease held", err)
	}

	// Voluntary release + re-acquire by the SAME owner keeps the ID (an
	// uninterrupted writer's cached state stays valid across batches).
	if err := m.ReleaseLease(ga2.ID); err != nil {
		t.Fatal(err)
	}
	ga3, err := m.AcquireLease(LeaseRequest{Owner: "a", TTLMillis: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if ga3.ID != ga.ID {
		t.Fatalf("release/re-acquire by the holder bumped the ID: %d -> %d", ga.ID, ga3.ID)
	}

	// Transfer to another owner after release: ID bumps.
	if err := m.ReleaseLease(ga3.ID); err != nil {
		t.Fatal(err)
	}
	gb, err := m.AcquireLease(LeaseRequest{Owner: "b", TTLMillis: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if gb.ID == ga.ID {
		t.Fatal("owner transfer kept the fencing ID")
	}

	// Expiry takeover: the live holder's TTL lapses, a third owner takes
	// the lease, ID bumps again, and the expiration counter ticks.
	clk.advance(2 * time.Second)
	gc, err := m.AcquireLease(LeaseRequest{Owner: "c", TTLMillis: 1000})
	if err != nil {
		t.Fatalf("takeover of an expired lease: %v", err)
	}
	if gc.ID == gb.ID {
		t.Fatal("expiry takeover kept the fencing ID")
	}
	st := m.LeaseStatsNow()
	if st.Expirations == 0 {
		t.Fatal("expiry takeover did not tick the expiration counter")
	}
	if st.Holder != "c" || !st.Held {
		t.Fatalf("stats holder = %+v, want held by c", st)
	}

	// Releasing a stale (already-transferred) ID is a harmless no-op.
	if err := m.ReleaseLease(gb.ID); err != nil {
		t.Fatal(err)
	}
	if st := m.LeaseStatsNow(); st.Holder != "c" {
		t.Fatalf("stale release evicted the live holder: %+v", st)
	}
}

// TestMutateLeasedAssignsSeq pins server-side sequencing: Seq 0 batches
// get lastSeq+1 under the apply lock, stale lease IDs are fenced with a
// typed error BEFORE anything applies, and Release:true frees the lease
// at apply.
func TestMutateLeasedAssignsSeq(t *testing.T) {
	m, clk := newLeasedMutable(t)
	g, err := m.AcquireLease(LeaseRequest{Owner: "a", TTLMillis: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if g.LastSeq != 0 {
		t.Fatalf("grant LastSeq = %d on a fresh table", g.LastSeq)
	}

	noop := func() LeasedBatch {
		return LeasedBatch{LeaseID: g.ID, B: MutationBatch{
			Ver: MutationBatchVersion, Ops: []RowOp{{Kind: OpPatch, Pre: 2}},
		}}
	}

	// Two Seq-0 batches land as sequences 1 and 2.
	r1, err := m.MutateLeased(noop())
	if err != nil {
		t.Fatal(err)
	}
	if r1.LastSeq != 1 {
		t.Fatalf("first leased batch LastSeq = %d, want 1", r1.LastSeq)
	}
	r2, err := m.MutateLeased(noop())
	if err != nil {
		t.Fatal(err)
	}
	if r2.LastSeq != 2 {
		t.Fatalf("second leased batch LastSeq = %d, want 2", r2.LastSeq)
	}

	// Zero, unknown, and expired lease IDs are all fenced, nothing
	// applied (the sequence must not advance).
	lb := noop()
	lb.LeaseID = 0
	if _, err := m.MutateLeased(lb); !IsLeaseExpired(err) {
		t.Fatalf("leaseless batch got %v, want LeaseExpiredError", err)
	}
	lb = noop()
	lb.LeaseID = g.ID + 99
	if _, err := m.MutateLeased(lb); !IsLeaseExpired(err) {
		t.Fatalf("unknown lease ID got %v, want LeaseExpiredError", err)
	}
	clk.advance(5 * time.Second)
	if _, err := m.MutateLeased(noop()); !IsLeaseExpired(err) {
		t.Fatalf("expired lease got %v, want LeaseExpiredError", err)
	}
	if got := m.LastSeq(); got != 2 {
		t.Fatalf("fenced batches advanced the sequence to %d", got)
	}

	// The expiry fence must survive the RMI boundary as matchable.
	srv := rmi.NewServer()
	RegisterServer(srv, m)
	cli := rmi.Pipe(srv)
	defer cli.Close()
	if _, err := NewRemote(cli).MutateLeased(noop()); !IsLeaseExpired(err) {
		t.Fatalf("over the wire: got %v, want lease expired", err)
	}

	// Release-at-apply: a batch with Release set frees the lease the
	// moment it applies, so another owner acquires with no takeover.
	g, err = m.AcquireLease(LeaseRequest{Owner: "a", TTLMillis: 1000})
	if err != nil {
		t.Fatal(err)
	}
	lb = noop()
	lb.LeaseID = g.ID
	lb.Release = true
	if _, err := m.MutateLeased(lb); err != nil {
		t.Fatal(err)
	}
	expBefore := m.LeaseStatsNow().Expirations
	gb, err := m.AcquireLease(LeaseRequest{Owner: "b", TTLMillis: 1000})
	if err != nil {
		t.Fatalf("acquire after release-at-apply: %v", err)
	}
	if gb.ID == g.ID {
		t.Fatal("owner transfer kept the fencing ID")
	}
	if gb.LastSeq != 3 {
		t.Fatalf("grant LastSeq = %d, want 3", gb.LastSeq)
	}
	if exp := m.LeaseStatsNow().Expirations; exp != expBefore {
		t.Fatal("clean handover counted as an expiration")
	}
}
