// Writable shares: the server half of the mutation pipeline.
//
// The client plans every insert/update/delete as a flat list of row
// operations (see the Session planner in the root package) — division
// in the ring F_q[x]/(x^(q−1)−1) is impossible (zero divisors), so all
// rewrites arrive as precomputed additive deltas or full replacement
// rows, and the server applies them without learning tags or structure
// beyond what the static table already reveals. A batch is:
//
//   - journaled to the tenant's write-ahead log (internal/wal) before
//     any row changes, so a crash replays it;
//   - applied atomically with respect to readers: the epoch gate's
//     write lock holds off per-frame reads for the duration;
//   - sequenced: batches carry a per-log sequence number, the server
//     rejects gaps and acknowledges duplicates idempotently, which is
//     what lets the cluster layer redeliver batches to a restarted
//     replica without divergence. An idempotent ack is digest-verified:
//     the server keeps a checksum of the last digestWindow applied
//     batches, and a redelivery whose bytes differ from what the
//     sequence actually consumed is rejected with a BatchMismatchError
//     instead of falsely acknowledged — a concurrent writer one
//     sequence behind gets a typed error, not a silently lost update.
//
// Apply is deterministic: replicas that accept the same batch sequence
// hold byte-identical node tables (minisql updates rows in place and
// its dump order is physical), and a batch that fails mid-way fails at
// the same op on every replica — consistency never depends on a batch
// succeeding, only on everyone applying the same prefix.
package filter

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"sync"
	"sync/atomic"

	"encshare/internal/rmi"
	"encshare/internal/store"
)

// Op kinds of one row operation.
const (
	// OpPut inserts a brand-new row (Pre, Post, Parent, Blob).
	OpPut = uint8(iota + 1)
	// OpPatch rewrites the row at Pre: optionally renumbering it to
	// NewPre, shifting Post by PostDelta, conditionally shifting Parent,
	// and ring-adding Blob (a share delta) onto the stored share.
	OpPatch
	// OpDelete removes the row at Pre.
	OpDelete
)

// RowOp is one wire-level row operation. For OpPatch, Blob — when
// non-empty — is the additive share delta: decoded, ring-added to the
// stored share, re-encoded. Parent is shifted by ParentDelta only when
// the stored parent is ≥ ParentMin (evaluated server-side, so a
// renumbering shift is one op per row instead of a fetch round-trip).
type RowOp struct {
	Kind   uint8
	Pre    int64
	Post   int64 // OpPut: post value
	Parent int64 // OpPut: parent value

	NewPre      int64 // OpPatch: new pre (0 = unchanged)
	PostDelta   int64 // OpPatch: post += PostDelta
	ParentMin   int64 // OpPatch: shift parent only when parent >= ParentMin (0 = never)
	ParentDelta int64 // OpPatch: parent += ParentDelta when the guard holds

	Blob []byte // OpPut: full share; OpPatch: share delta (empty = unchanged)
}

// MutationBatchVersion is the current MutationBatch.Ver value.
const MutationBatchVersion = 1

// MutationBatch is one journaled unit of mutation: the ops of one
// logical insert/update/delete (or several), applied atomically with
// respect to reader frames.
type MutationBatch struct {
	Ver uint8
	// Seq is the batch's position in the tenant's log: the server
	// accepts exactly lastSeq+1, acknowledges ≤ lastSeq idempotently,
	// and rejects anything further ahead as a gap.
	Seq uint64
	Ops []RowOp
}

// MutateReply acknowledges a batch: the server's new epoch and last
// applied sequence, plus the shard's (possibly shifted) pre range.
type MutateReply struct {
	Epoch   uint64
	LastSeq uint64
	Range   PreRange
}

// EpochInfo reports a server's mutation state without changing it —
// what sessions pin at dial time and refresh after a StaleEpochError.
type EpochInfo struct {
	Epoch   uint64
	LastSeq uint64
	Range   PreRange
}

// staleEpochPrefix is the wire-stable start of a StaleEpochError's
// message; IsStaleEpoch matches it across the RMI boundary.
const staleEpochPrefix = "filter: stale epoch"

// StaleEpochError fences a pinned reader off data that mutated under
// it: the frame carried epoch Pinned but the server is at Current. The
// cure is a whole-query retry after re-pinning (sessions do this
// automatically), so the error is Retryable.
type StaleEpochError struct {
	Pinned  uint64
	Current uint64
}

func (e *StaleEpochError) Error() string {
	return fmt.Sprintf("%s: pinned %d, server at %d", staleEpochPrefix, e.Pinned, e.Current)
}

// IsStaleEpoch reports whether err is a stale-epoch fence, locally
// typed or arriving over the wire as a RemoteError.
func IsStaleEpoch(err error) bool {
	var se *StaleEpochError
	if errors.As(err, &se) {
		return true
	}
	var re *rmi.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, staleEpochPrefix)
}

// seqGapPrefix is the wire-stable start of a SeqGapError's message.
const seqGapPrefix = "filter: sequence gap"

// SeqGapError rejects a batch that is not the immediate successor of
// the log: the sender must catch the replica up (redeliver Want..) or
// refresh its own view of LastSeq.
type SeqGapError struct {
	Want uint64
	Got  uint64
}

func (e *SeqGapError) Error() string {
	return fmt.Sprintf("%s: want %d, got %d", seqGapPrefix, e.Want, e.Got)
}

// IsSeqGap reports whether err is a sequence-gap rejection, locally
// typed or over the wire.
func IsSeqGap(err error) bool {
	var ge *SeqGapError
	if errors.As(err, &ge) {
		return true
	}
	var re *rmi.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, seqGapPrefix)
}

// walFailedPrefix is the wire-stable start of a WALFailedError's
// message.
const walFailedPrefix = "filter: wal failed"

// WALFailedError refuses a mutation because the tenant's write-ahead
// log is in the sticky failed state: an fsync (or write) error occurred
// and durability can no longer be promised, so the tenant serves reads
// but refuses writes until an operator restarts it (restart-and-replay
// recovers the synced prefix). The error is Retryable and names the
// tenant — a clustered client fails the batch over to a healthy replica
// and the repair loop redelivers once the sick one is restarted.
type WALFailedError struct {
	Tenant string
	Err    error
}

func (e *WALFailedError) Error() string {
	return fmt.Sprintf("%s: tenant %q is read-only until restart: %v", walFailedPrefix, e.Tenant, e.Err)
}

func (e *WALFailedError) Unwrap() error { return e.Err }

// IsWALFailed reports whether err is a WAL-failure refusal, locally
// typed or over the wire.
func IsWALFailed(err error) bool {
	var we *WALFailedError
	if errors.As(err, &we) {
		return true
	}
	var re *rmi.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, walFailedPrefix)
}

// batchMismatchPrefix is the wire-stable start of a BatchMismatchError's
// message.
const batchMismatchPrefix = "filter: batch mismatch"

// BatchMismatchError rejects a redelivered batch whose bytes differ
// from the batch that actually consumed its sequence number — a
// concurrent writer raced another writer's batch onto the same
// sequence. The rejected batch was never applied; its sender must
// re-plan against the current state, so the error is not Retryable
// (resending the same bytes can never succeed).
type BatchMismatchError struct {
	Seq uint64
}

func (e *BatchMismatchError) Error() string {
	return fmt.Sprintf("%s: sequence %d was consumed by a different batch", batchMismatchPrefix, e.Seq)
}

// IsBatchMismatch reports whether err is a batch-mismatch rejection,
// locally typed or over the wire.
func IsBatchMismatch(err error) bool {
	var be *BatchMismatchError
	if errors.As(err, &be) {
		return true
	}
	var re *rmi.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, batchMismatchPrefix)
}

// ErrMutationUnsupported reports a server that predates the mutation
// frames: writes cannot downgrade the way reads do, so the caller sees
// a typed refusal instead of silent data loss.
var ErrMutationUnsupported = errors.New("filter: server does not support mutation frames")

// MutableAPI is the optional interface a writable backend adds on top
// of ServerAPI. RegisterServerAt exposes it as the v6 wire methods.
type MutableAPI interface {
	Mutate(b MutationBatch) (MutateReply, error)
	Epoch() (EpochInfo, error)
}

// GateExempt reports whether an RMI method must bypass the epoch read
// gate: the write path takes its own locks (gating Mutate behind a read
// lock would deadlock against its own apply), and Epoch must answer
// even when the caller's pin is stale — it is how sessions re-pin.
func GateExempt(method string) bool {
	switch method {
	case methodMutate, methodEpoch,
		methodAcquireLease, methodReleaseLease, methodMutateLeased:
		return true
	}
	return false
}

// EncodeBatch serializes a batch to the byte string journaled in the
// WAL (and replayed from it). The encoding is hand-rolled because it
// must be fully deterministic — equal batches must encode to equal
// bytes in every process, since replica WAL files are compared
// byte-for-byte. gob cannot promise that: its type IDs come from a
// process-global registry in first-encode order, so two replica
// processes journal different bytes for the same batch. Layout: Ver
// byte, Seq uvarint, op count uvarint, then per op a Kind byte, the
// seven numeric fields as zigzag varints, and a length-prefixed blob.
// New fields append behind a Ver bump.
func EncodeBatch(b MutationBatch) ([]byte, error) {
	buf := make([]byte, 0, 16+len(b.Ops)*24)
	buf = append(buf, b.Ver)
	buf = binary.AppendUvarint(buf, b.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(b.Ops)))
	for _, op := range b.Ops {
		buf = append(buf, op.Kind)
		for _, v := range [...]int64{op.Pre, op.Post, op.Parent, op.NewPre, op.PostDelta, op.ParentMin, op.ParentDelta} {
			buf = binary.AppendVarint(buf, v)
		}
		buf = binary.AppendUvarint(buf, uint64(len(op.Blob)))
		buf = append(buf, op.Blob...)
	}
	return buf, nil
}

// DecodeBatch reverses EncodeBatch. It is defensive — a corrupted
// record surfaces as an error, never a panic or an oversized
// allocation — because replay feeds it whatever prefix of the log
// passed the CRC check.
func DecodeBatch(data []byte) (MutationBatch, error) {
	bad := func(what string) (MutationBatch, error) {
		return MutationBatch{}, fmt.Errorf("filter: decode batch: truncated or invalid %s", what)
	}
	if len(data) == 0 {
		return bad("header")
	}
	var b MutationBatch
	b.Ver = data[0]
	data = data[1:]
	seq, n := binary.Uvarint(data)
	if n <= 0 {
		return bad("seq")
	}
	b.Seq = seq
	data = data[n:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return bad("op count")
	}
	data = data[n:]
	// Every op occupies at least 9 bytes, so the count bounds the
	// allocation against a corrupted record.
	if count > uint64(len(data)) {
		return bad("op count")
	}
	if count > 0 {
		b.Ops = make([]RowOp, 0, count)
	}
	for i := uint64(0); i < count; i++ {
		if len(data) == 0 {
			return bad("op kind")
		}
		var op RowOp
		op.Kind = data[0]
		data = data[1:]
		for _, dst := range [...]*int64{&op.Pre, &op.Post, &op.Parent, &op.NewPre, &op.PostDelta, &op.ParentMin, &op.ParentDelta} {
			v, n := binary.Varint(data)
			if n <= 0 {
				return bad("op field")
			}
			*dst = v
			data = data[n:]
		}
		bl, n := binary.Uvarint(data)
		if n <= 0 || bl > uint64(len(data)-n) {
			return bad("blob")
		}
		data = data[n:]
		if bl > 0 {
			op.Blob = append([]byte(nil), data[:bl]...)
			data = data[bl:]
		}
		b.Ops = append(b.Ops, op)
	}
	if len(data) != 0 {
		return MutationBatch{}, fmt.Errorf("filter: decode batch: %d trailing bytes", len(data))
	}
	return b, nil
}

// Mutable wraps a ServerFilter with the write path: sequencing, WAL
// journaling, and the epoch gate that fences readers. It serves the
// full read API by embedding, so it registers wherever a ServerFilter
// would; reads do not lock here — per-frame atomicity comes from the
// epoch gate held by the RMI dispatch layer (see Mutable.ReadLock),
// and in-process sessions serialize at the session level.
type Mutable struct {
	*ServerFilter

	mu   sync.Mutex   // one writer at a time: seq check + journal + apply
	gate sync.RWMutex // readers (per frame) vs apply

	// lastSeq is atomic, not mu-guarded: ReadLock checks it while
	// holding gate.RLock, and taking mu there would deadlock against a
	// writer holding mu while waiting for gate.Lock. Writers still
	// serialize stores under mu; the store happens before gate.Unlock so
	// an admitted reader never sees a pre-bump epoch with post-apply
	// rows.
	lastSeq atomic.Uint64

	// journal stages an encoded batch before apply; nil = ephemeral
	// (mutations allowed, nothing survives a restart). The returned
	// commit makes the staged bytes durable (fsync) — it runs OUTSIDE mu
	// so the next writer can stage while this fsync is in flight, which
	// is what lets the WAL's commit leader coalesce concurrent batches
	// into one fdatasync. The batch is acked only after commit returns
	// nil.
	journal JournalFunc
	// compact runs after a successful apply, under mu (which is why it
	// is handed lastSeq instead of reading it back through a method that
	// would re-lock); the server runtime uses it for size-triggered log
	// folding. May be nil.
	compact func(lastSeq uint64) error

	// dead, once set, is the sticky WAL failure: every mutation —
	// including idempotent re-acks — is refused with it until the
	// process restarts. First cause wins.
	dead atomic.Pointer[WALFailedError]
	// tenant names this Mutable in WALFailedError messages so a
	// clustered client knows which replica to report sick.
	tenant atomic.Pointer[string]
	// trips counts sticky-failure transitions (0 or 1 per process life,
	// but a counter reads naturally in metrics).
	trips atomic.Uint64

	// hist holds the digests of the last digestWindow consumed batches
	// (mu-guarded, ascending seq): the evidence that lets the
	// idempotent-ack path tell a true redelivery from a different batch
	// colliding with a consumed sequence.
	hist []batchDigest

	// ls is the writer-lease state (see lease.go); mutations through
	// MutateLeased are sequenced by the server under it.
	ls leaseState
}

// JournalFunc stages one encoded batch for durability. The write must
// be staged (ordered, framed) before returning; the returned commit
// blocks until the bytes are covered by a successful fsync. Either
// error moves the owning Mutable into the sticky read-only state.
type JournalFunc func(payload []byte) (commit func() error, err error)

// digestWindow bounds how many consumed batches keep a digest. It must
// exceed the cluster layer's redelivery backlog (64 batches) so every
// batch a coordinator can legally redeliver is still verifiable; a
// batch older than the window (or applied before this process started)
// is acknowledged unverified, as before.
const digestWindow = 128

// batchDigest is the checksum of one consumed batch's canonical
// encoding — the same bytes journaled to the WAL, so replicas record
// identical digests.
type batchDigest struct {
	seq uint64
	sum uint32
}

var _ MutableAPI = (*Mutable)(nil)

// NewMutable makes sf writable. journal and compact may be nil; seed
// lastSeq with the sequence number recovered from the snapshot + log.
func NewMutable(sf *ServerFilter, lastSeq uint64, journal JournalFunc, compact func(lastSeq uint64) error) *Mutable {
	m := &Mutable{ServerFilter: sf, journal: journal, compact: compact}
	m.lastSeq.Store(lastSeq)
	return m
}

// SetTenant names this Mutable in WALFailedError messages. Call before
// serving; safe concurrently regardless.
func (m *Mutable) SetTenant(name string) { m.tenant.Store(&name) }

// failWAL moves the Mutable into the sticky read-only state (first
// cause wins) and returns the refusal to surface.
func (m *Mutable) failWAL(seq uint64, cause error) error {
	name := "default"
	if p := m.tenant.Load(); p != nil {
		name = *p
	}
	we := &WALFailedError{Tenant: name, Err: fmt.Errorf("batch %d: %w", seq, cause)}
	if m.dead.CompareAndSwap(nil, we) {
		m.trips.Add(1)
	}
	return m.dead.Load()
}

// WALFailed returns the sticky WAL failure, or nil while the write
// path is healthy. Reads are unaffected either way.
func (m *Mutable) WALFailed() error {
	if we := m.dead.Load(); we != nil {
		return we
	}
	return nil
}

// WALTrips returns how many times the sticky failure tripped (0 or 1).
func (m *Mutable) WALTrips() uint64 { return m.trips.Load() }

// epochOf maps a log position to the reader-visible epoch: a fresh
// table is epoch 1, every applied batch bumps it by one. Epoch 0 on the
// wire means "unpinned" (and keeps pre-mutation frames byte-identical,
// since gob omits zero fields).
func epochOf(lastSeq uint64) uint64 { return lastSeq + 1 }

// LastSeq returns the sequence number of the last applied batch.
func (m *Mutable) LastSeq() uint64 { return m.lastSeq.Load() }

// Epoch implements MutableAPI.
func (m *Mutable) Epoch() (EpochInfo, error) {
	last := m.lastSeq.Load()
	rng, err := m.PreRange()
	if err != nil {
		return EpochInfo{}, err
	}
	return EpochInfo{Epoch: epochOf(last), LastSeq: last, Range: rng}, nil
}

// ReadLock admits one reader frame pinned at epoch (0 = unpinned): it
// takes the gate's read lock, verifies the pin against the current
// epoch, and returns the release. The lock is held across the whole
// frame, so an apply cannot interleave with it — a pinned frame either
// sees its epoch's data in full or fails the check here.
func (m *Mutable) ReadLock(epoch uint64) (release func(), err error) {
	m.gate.RLock()
	if epoch != 0 {
		if cur := epochOf(m.lastSeq.Load()); epoch != cur {
			m.gate.RUnlock()
			return nil, &StaleEpochError{Pinned: epoch, Current: cur}
		}
	}
	return m.gate.RUnlock, nil
}

// recordDigest remembers the digest of the batch that consumed seq,
// trimming the history to digestWindow. Caller holds m.mu.
func (m *Mutable) recordDigest(seq uint64, sum uint32) {
	m.hist = append(m.hist, batchDigest{seq: seq, sum: sum})
	if n := len(m.hist) - digestWindow; n > 0 {
		m.hist = append(m.hist[:0], m.hist[n:]...)
	}
}

// digestAt returns the recorded digest for seq, if still in the
// window. Caller holds m.mu.
func (m *Mutable) digestAt(seq uint64) (uint32, bool) {
	for i := len(m.hist) - 1; i >= 0; i-- {
		switch {
		case m.hist[i].seq == seq:
			return m.hist[i].sum, true
		case m.hist[i].seq < seq:
			return 0, false
		}
	}
	return 0, false
}

// Mutate implements MutableAPI: sequence-check, journal, apply, bump,
// then fsync before acking. The fsync (the journal's commit) runs after
// mu is released so the next writer stages its batch concurrently and
// the WAL's commit leader coalesces the fdatasyncs — group commit. The
// reply reaches the caller only after the covering fsync returns nil; a
// commit failure trips the sticky read-only state and the batch is NOT
// acked (it is applied in memory, but this process refuses all further
// writes and a restart recovers exactly the durable prefix).
func (m *Mutable) Mutate(b MutationBatch) (MutateReply, error) {
	if b.Ver == 0 || b.Ver > MutationBatchVersion {
		return MutateReply{}, fmt.Errorf("filter: mutation batch version %d unsupported", b.Ver)
	}
	// The canonical encoding feeds both the journal and the digest
	// history; encoding before taking mu keeps the lock hold short.
	payload, err := EncodeBatch(b)
	if err != nil {
		return MutateReply{}, err
	}
	m.mu.Lock()
	reply, commit, err := m.mutateLocked(b, payload)
	m.mu.Unlock()
	// Run the commit even when apply reported an error: the sequence
	// advanced, so the journaled bytes must become durable (or trip the
	// sticky failure) either way.
	if commit != nil {
		if cerr := commit(); cerr != nil {
			werr := m.failWAL(b.Seq, cerr)
			if err == nil {
				err = werr
			}
		}
	}
	if err != nil {
		return MutateReply{}, err
	}
	return reply, nil
}

// mutateLocked is the under-mu body of Mutate: sequence-check, journal
// staging, apply, bump, reply assembly. It returns the commit (fsync)
// closure for the caller to run after releasing mu. Caller holds m.mu.
func (m *Mutable) mutateLocked(b MutationBatch, payload []byte) (MutateReply, func() error, error) {
	// A sick WAL refuses everything, idempotent re-acks included: an
	// applied-but-unsynced batch must never be confirmed.
	if we := m.dead.Load(); we != nil {
		return MutateReply{}, nil, we
	}
	sum := crc32.ChecksumIEEE(payload)
	last := m.lastSeq.Load()
	ack := func() (MutateReply, error) {
		rng, err := m.PreRange()
		if err != nil {
			return MutateReply{}, err
		}
		cur := m.lastSeq.Load()
		return MutateReply{Epoch: epochOf(cur), LastSeq: cur, Range: rng}, nil
	}
	if b.Seq <= last {
		// Redelivery of a consumed sequence: acknowledge idempotently —
		// but only if these are the bytes that consumed it (a replica
		// catch-up overshooting, or a writer retry after a lost ack). A
		// digest mismatch means a DIFFERENT batch took this sequence (a
		// concurrent writer raced this one); acking it would report a
		// never-applied batch as committed.
		if want, ok := m.digestAt(b.Seq); ok && want != sum {
			return MutateReply{}, nil, &BatchMismatchError{Seq: b.Seq}
		}
		reply, err := ack()
		return reply, nil, err
	}
	if b.Seq != last+1 {
		return MutateReply{}, nil, &SeqGapError{Want: last + 1, Got: b.Seq}
	}
	var commit func() error
	if m.journal != nil {
		c, err := m.journal(payload)
		if err != nil {
			// A staging failure is sticky too: the WAL refuses further
			// writes anyway (a hole below later records would let an
			// acked record vanish at recovery).
			return MutateReply{}, nil, m.failWAL(b.Seq, err)
		}
		commit = c
	}
	m.gate.Lock()
	applyErr := m.ServerFilter.ApplyOps(b.Ops)
	// The batch is journaled and its deterministic prefix applied: the
	// sequence advances even on error, because every replica (and every
	// replay) fails at the same op and holds the same state. The bump
	// happens before the gate opens so a reader admitted next sees the
	// new epoch with the new rows, never one without the other.
	m.lastSeq.Store(b.Seq)
	m.gate.Unlock()
	m.recordDigest(b.Seq, sum)
	if applyErr != nil {
		return MutateReply{}, commit, fmt.Errorf("filter: apply batch %d: %w", b.Seq, applyErr)
	}
	if m.compact != nil {
		// Compaction may fold this very batch into the base snapshot and
		// truncate the log; the pending commit then observes the WAL's
		// truncation generation moved and reports durable — sound,
		// because the snapshot is fsynced before the truncate.
		if err := m.compact(b.Seq); err != nil {
			return MutateReply{}, commit, fmt.Errorf("filter: compact after batch %d: %w", b.Seq, err)
		}
	}
	reply, err := ack()
	return reply, commit, err
}

// Replay applies a batch recovered from the log without re-journaling
// it — the attach-time recovery path. Batches at or below lastSeq are
// skipped (they are folded into the snapshot already). Replayed batches
// seed the digest history, so a restarted server verifies redeliveries
// of pre-crash batches too (the codec is a canonical fixed point:
// re-encoding a decoded batch reproduces the journaled bytes).
func (m *Mutable) Replay(b MutationBatch) error {
	payload, perr := EncodeBatch(b)
	if perr != nil {
		return perr
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	last := m.lastSeq.Load()
	if b.Seq <= last {
		return nil
	}
	if b.Seq != last+1 {
		return &SeqGapError{Want: last + 1, Got: b.Seq}
	}
	m.gate.Lock()
	err := m.ServerFilter.ApplyOps(b.Ops)
	m.lastSeq.Store(b.Seq)
	m.gate.Unlock()
	m.recordDigest(b.Seq, crc32.ChecksumIEEE(payload))
	return err
}

// Compact runs fn with writers excluded and the current last sequence:
// the hook a manual compaction (snapshot + log truncate) uses to dump a
// store no batch is concurrently rewriting. Reader frames are not held
// off — they only read, and no writer can interleave.
func (m *Mutable) Compact(fn func(lastSeq uint64) error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	// A sick WAL must not be compacted: the snapshot would capture
	// in-memory state that was applied but never made durable, silently
	// promoting lost writes at the next restart.
	if we := m.dead.Load(); we != nil {
		return we
	}
	return fn(m.lastSeq.Load())
}

// ApplyOps applies row operations in order. Determinism contract: the
// only sources of outcome are the op list and the current table; any
// error leaves exactly the ops before the failing one applied. The
// decoded-polynomial cache is invalidated wholesale afterwards — a
// renumbering batch touches most keys anyway, and correctness must
// never depend on selective invalidation.
func (sf *ServerFilter) ApplyOps(ops []RowOp) error {
	defer sf.purgeCache()
	for i, op := range ops {
		var err error
		switch op.Kind {
		case OpPut:
			err = sf.st.InsertNode(store.NodeRow{Pre: op.Pre, Post: op.Post, Parent: op.Parent, Poly: op.Blob})
		case OpPatch:
			err = sf.applyPatch(op)
		case OpDelete:
			err = sf.st.DeleteNode(op.Pre)
		default:
			err = fmt.Errorf("unknown op kind %d", op.Kind)
		}
		if err != nil {
			return fmt.Errorf("op %d (kind %d, pre %d): %w", i, op.Kind, op.Pre, err)
		}
	}
	return nil
}

func (sf *ServerFilter) applyPatch(op RowOp) error {
	row, err := sf.st.Node(op.Pre)
	if err != nil {
		return err
	}
	if len(op.Blob) > 0 {
		cur := sf.r.GetPoly()
		delta := sf.r.GetPoly()
		defer sf.r.PutPoly(cur)
		defer sf.r.PutPoly(delta)
		if err := sf.r.DecodeInto(cur, row.Poly); err != nil {
			return fmt.Errorf("stored share: %w", err)
		}
		if err := sf.r.DecodeInto(delta, op.Blob); err != nil {
			return fmt.Errorf("share delta: %w", err)
		}
		sf.r.AddInPlace(cur, delta)
		row.Poly = sf.r.AppendBytes(make([]byte, 0, sf.r.PolyBytes()), cur)
	} else {
		// The blob cells alias the stored row; copy before UpdateNode
		// rewrites the slot.
		row.Poly = append([]byte(nil), row.Poly...)
	}
	newPre := op.Pre
	if op.NewPre != 0 {
		newPre = op.NewPre
	}
	parent := row.Parent
	if op.ParentMin > 0 && parent >= op.ParentMin {
		parent += op.ParentDelta
	}
	return sf.st.UpdateNode(op.Pre, store.NodeRow{
		Pre:    newPre,
		Post:   row.Post + op.PostDelta,
		Parent: parent,
		Poly:   row.Poly,
	})
}

// purgeCache drops every decoded polynomial after a mutation. With a
// shared multi-tenant cache this also evicts other tenants' entries —
// wasteful but safe, and mutations are rare next to reads.
func (sf *ServerFilter) purgeCache() {
	if sf.cache != nil {
		sf.cache.purge()
	}
}
