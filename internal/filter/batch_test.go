package filter

import (
	"strings"
	"testing"

	"encshare/internal/rmi"
)

// allChecks builds the full (node × name) check matrix of the fixture —
// deliberately containing many checks against the same node, which is
// the shape the advanced engine's look-ahead produces and the batch
// grouping optimizes.
func allChecks(t testing.TB, fx *fixture) []Check {
	t.Helper()
	var checks []Check
	for pre := int64(1); pre <= fx.doc.Count; pre++ {
		for _, name := range fx.m.Names() {
			checks = append(checks, Check{Pre: pre, Point: fx.val(t, name)})
		}
	}
	return checks
}

// TestEvalBatchMatchesEvalAt: one batched exchange must return exactly
// the per-call results, member for member, on both the in-process server
// filter and the RMI proxy.
func TestEvalBatchMatchesEvalAt(t *testing.T) {
	fx := newFixture(t, testXML)
	rem := NewRemote(fx.rmiCli)
	for _, tc := range []struct {
		name string
		api  BatchAPI
	}{
		{"local", fx.server},
		{"remote", rem},
	} {
		checks := allChecks(t, fx)
		reqs := make([]EvalRequest, len(checks))
		for i, c := range checks {
			reqs[i] = EvalRequest(c)
		}
		got, err := tc.api.EvalBatch(reqs)
		if err != nil {
			t.Fatalf("%s: EvalBatch: %v", tc.name, err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("%s: %d results for %d requests", tc.name, len(got), len(reqs))
		}
		sapi := tc.api.(ServerAPI)
		for i, q := range reqs {
			want, err := sapi.EvalAt(q.Pre, q.Point)
			if err != nil {
				t.Fatalf("%s: EvalAt(%d): %v", tc.name, q.Pre, err)
			}
			if got[i].Err != "" || got[i].Val != want {
				t.Fatalf("%s: member %d = (%d, %q), want (%d, \"\")",
					tc.name, i, got[i].Val, got[i].Err, want)
			}
		}
	}
}

// TestEvalBatchPartialErrors: a missing node voids only its own member.
func TestEvalBatchPartialErrors(t *testing.T) {
	fx := newFixture(t, testXML)
	rem := NewRemote(fx.rmiCli)
	for _, tc := range []struct {
		name string
		api  BatchAPI
	}{
		{"local", fx.server},
		{"remote", rem},
	} {
		v := fx.val(t, "site")
		got, err := tc.api.EvalBatch([]EvalRequest{
			{Pre: 1, Point: v},
			{Pre: 99999, Point: v},
			{Pre: 2, Point: v},
		})
		if err != nil {
			t.Fatalf("%s: EvalBatch: %v", tc.name, err)
		}
		if got[0].Err != "" || got[2].Err != "" {
			t.Fatalf("%s: healthy members errored: %+v", tc.name, got)
		}
		if got[1].Err == "" || !strings.Contains(got[1].Err, "not found") {
			t.Fatalf("%s: missing node gave %q, want a not-found error", tc.name, got[1].Err)
		}
	}
}

// TestEvalBatchCacheInteraction: results must be identical whatever the
// decoded-polynomial cache does — disabled, thrashing (evictions on a
// tiny cache), or warm from a previous batch.
func TestEvalBatchCacheInteraction(t *testing.T) {
	fx := newFixture(t, testXML)
	checks := allChecks(t, fx)
	reqs := make([]EvalRequest, len(checks))
	for i, c := range checks {
		reqs[i] = EvalRequest(c)
	}
	want, err := fx.server.EvalBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, cacheSize := range []int{0, 2, 1024} {
		sf := NewServerFilter(fx.server.st, fx.r, cacheSize)
		for round := 0; round < 2; round++ { // second round hits whatever is cached
			got, err := sf.EvalBatch(reqs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("cache=%d round %d: member %d = %+v, want %+v",
						cacheSize, round, i, got[i], want[i])
				}
			}
		}
	}
}

// TestContainsBatchMatchesContains: the batched client test must agree
// with N individual Contains calls and count the same work.
func TestContainsBatchMatchesContains(t *testing.T) {
	fx := newFixture(t, testXML)
	for _, tc := range []struct {
		name string
		cli  *Client
	}{
		{"local", fx.local},
		{"remote", fx.remote},
	} {
		checks := allChecks(t, fx)
		before := tc.cli.Counters.Snapshot()
		got, err := tc.cli.ContainsBatch(checks)
		if err != nil {
			t.Fatalf("%s: ContainsBatch: %v", tc.name, err)
		}
		d := tc.cli.Counters.Snapshot().Sub(before)
		if d.Evaluations != int64(len(checks)) {
			t.Fatalf("%s: batch counted %d evaluations, want %d", tc.name, d.Evaluations, len(checks))
		}
		for i, c := range checks {
			want, err := tc.cli.Contains(c.Pre, c.Point)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("%s: member %d (pre=%d) = %v, want %v", tc.name, i, c.Pre, got[i], want)
			}
		}
	}
}

// TestEqualsBatchMatchesEquals: same for the strict test, including the
// reconstruction accounting.
func TestEqualsBatchMatchesEquals(t *testing.T) {
	fx := newFixture(t, testXML)
	for _, tc := range []struct {
		name string
		cli  *Client
	}{
		{"local", fx.local},
		{"remote", fx.remote},
	} {
		checks := allChecks(t, fx)
		before := tc.cli.Counters.Snapshot()
		got, err := tc.cli.EqualsBatch(checks)
		if err != nil {
			t.Fatalf("%s: EqualsBatch: %v", tc.name, err)
		}
		batchRecons := tc.cli.Counters.Snapshot().Sub(before).Reconstructions

		before = tc.cli.Counters.Snapshot()
		for i, c := range checks {
			want, err := tc.cli.Equals(c.Pre, c.Point)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("%s: member %d (pre=%d) = %v, want %v", tc.name, i, c.Pre, got[i], want)
			}
		}
		seqRecons := tc.cli.Counters.Snapshot().Sub(before).Reconstructions
		if batchRecons != seqRecons {
			t.Fatalf("%s: batch counted %d reconstructions, sequential %d", tc.name, batchRecons, seqRecons)
		}
	}
}

// TestNavigationBatches: ChildrenBatch/DescendantsBatch must return the
// per-call results in request order.
func TestNavigationBatches(t *testing.T) {
	fx := newFixture(t, testXML)
	for _, tc := range []struct {
		name string
		cli  *Client
	}{
		{"local", fx.local},
		{"remote", fx.remote},
	} {
		var pres []int64
		var spans []Span
		metas := make(map[int64]NodeMeta)
		for pre := int64(1); pre <= fx.doc.Count; pre++ {
			m, err := tc.cli.Node(pre)
			if err != nil {
				t.Fatal(err)
			}
			metas[pre] = m
			pres = append(pres, pre)
			spans = append(spans, Span{Pre: m.Pre, Post: m.Post})
		}
		kidLists, err := tc.cli.ChildrenBatch(pres)
		if err != nil {
			t.Fatal(err)
		}
		descLists, err := tc.cli.DescendantsBatch(spans)
		if err != nil {
			t.Fatal(err)
		}
		for i, pre := range pres {
			kids, err := tc.cli.Children(pre)
			if err != nil {
				t.Fatal(err)
			}
			if len(kids) != len(kidLists[i]) {
				t.Fatalf("%s: ChildrenBatch[%d] = %d kids, want %d", tc.name, i, len(kidLists[i]), len(kids))
			}
			for j := range kids {
				if kids[j] != kidLists[i][j] {
					t.Fatalf("%s: ChildrenBatch[%d][%d] = %+v, want %+v", tc.name, i, j, kidLists[i][j], kids[j])
				}
			}
			desc, err := tc.cli.Descendants(metas[pre].Pre, metas[pre].Post)
			if err != nil {
				t.Fatal(err)
			}
			if len(desc) != len(descLists[i]) {
				t.Fatalf("%s: DescendantsBatch[%d] = %d nodes, want %d", tc.name, i, len(descLists[i]), len(desc))
			}
		}
	}
}

// oldAPI hides the batch methods of a ServerFilter, simulating a server
// that predates the batch protocol.
type oldAPI struct{ ServerAPI }

// TestBatchFallbackAgainstOldServer: a batch-capable client against a
// per-call-only server must degrade gracefully — first batch call probes,
// gets "unknown method", and every check still returns the right answer
// through per-call exchanges.
func TestBatchFallbackAgainstOldServer(t *testing.T) {
	fx := newFixture(t, testXML)
	srv := rmi.NewServer()
	RegisterServer(srv, oldAPI{fx.server})
	rmiCli := rmi.Pipe(srv)
	t.Cleanup(func() { rmiCli.Close() })
	rem := NewRemote(rmiCli)
	cli := NewClient(rem, fx.scheme)

	checks := allChecks(t, fx)
	got, err := cli.ContainsBatch(checks)
	if err != nil {
		t.Fatalf("ContainsBatch over old server: %v", err)
	}
	for i, c := range checks {
		want, err := fx.local.Contains(c.Pre, c.Point)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("member %d (pre=%d) = %v, want %v", i, c.Pre, got[i], want)
		}
	}
	eqGot, err := cli.EqualsBatch(checks[:20])
	if err != nil {
		t.Fatalf("EqualsBatch over old server: %v", err)
	}
	for i, c := range checks[:20] {
		want, err := fx.local.Equals(c.Pre, c.Point)
		if err != nil {
			t.Fatal(err)
		}
		if eqGot[i] != want {
			t.Fatalf("equals member %d = %v, want %v", i, eqGot[i], want)
		}
	}

	counts := rem.CallCounts()
	if counts[methodEvalBatch] != 1 {
		t.Fatalf("expected exactly one batch probe, got %d", counts[methodEvalBatch])
	}
	if counts[methodEvalAt] != int64(len(checks)) {
		t.Fatalf("fallback issued %d EvalAt calls, want %d", counts[methodEvalAt], len(checks))
	}
}

// TestRemoteBatchRoundTrips: one batch = one round-trip, whatever its
// size.
func TestRemoteBatchRoundTrips(t *testing.T) {
	fx := newFixture(t, testXML)
	rem := NewRemote(fx.rmiCli)
	cli := NewClient(rem, fx.scheme)
	checks := allChecks(t, fx)
	if _, err := cli.ContainsBatch(checks); err != nil {
		t.Fatal(err)
	}
	if got := rem.EvalRoundTrips(); got != 1 {
		t.Fatalf("%d checks cost %d evaluation round-trips, want 1", len(checks), got)
	}
	if _, err := cli.EqualsBatch(checks[:10]); err != nil {
		t.Fatal(err)
	}
	counts := rem.CallCounts()
	if n := counts[methodNodePolysPage] + counts[methodNodePolysBatch]; n != 1 {
		t.Fatalf("EqualsBatch cost %d poly round-trips, want 1", n)
	}
	if counts[methodPoly] != 0 || counts[methodChildrenPolys] != 0 {
		t.Fatalf("batched equals fell back to per-call fetches: %v", counts)
	}
}

// TestBatchChunking: oversized batches are split into frame-bounded
// chunks transparently — same answers, one round-trip per chunk.
func TestBatchChunking(t *testing.T) {
	fx := newFixture(t, testXML)
	oldEval, oldPoly, oldMeta := evalChunkSize, polyChunkSize, metaChunkSize
	evalChunkSize, polyChunkSize, metaChunkSize = 7, 3, 4
	t.Cleanup(func() { evalChunkSize, polyChunkSize, metaChunkSize = oldEval, oldPoly, oldMeta })

	rem := NewRemote(fx.rmiCli)
	cli := NewClient(rem, fx.scheme)
	checks := allChecks(t, fx)

	got, err := cli.ContainsBatch(checks)
	if err != nil {
		t.Fatal(err)
	}
	wantRtts := int64((len(checks) + 6) / 7)
	if rtts := rem.EvalRoundTrips(); rtts != wantRtts {
		t.Fatalf("%d checks over chunk size 7 cost %d round-trips, want %d", len(checks), rtts, wantRtts)
	}
	for i, c := range checks {
		want, err := fx.local.Contains(c.Pre, c.Point)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != want {
			t.Fatalf("chunked member %d (pre=%d) = %v, want %v", i, c.Pre, got[i], want)
		}
	}

	eqGot, err := cli.EqualsBatch(checks[:10])
	if err != nil {
		t.Fatal(err)
	}
	counts := rem.CallCounts()
	if n := counts[methodNodePolysPage] + counts[methodNodePolysBatch]; n != 4 { // ceil(10/3)
		t.Fatalf("10 equals over chunk size 3 cost %d poly round-trips, want 4", n)
	}
	for i, c := range checks[:10] {
		want, err := fx.local.Equals(c.Pre, c.Point)
		if err != nil {
			t.Fatal(err)
		}
		if eqGot[i] != want {
			t.Fatalf("chunked equals member %d = %v, want %v", i, eqGot[i], want)
		}
	}
}

// TestParallelFor: the pool helper must cover every index exactly once
// for any worker/size combination.
func TestParallelFor(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100} {
		for _, workers := range []int{1, 2, 8, 200} {
			hits := make([]int32, n)
			parallelFor(n, workers, func(i int) { hits[i]++ })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d hit %d times", n, workers, i, h)
				}
			}
		}
	}
}
