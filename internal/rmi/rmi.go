// Package rmi is the repo's stand-in for Java RMI (paper §5.2): a small
// synchronous RPC layer with gob-encoded, length-prefixed frames over any
// net.Conn. The ClientFilter and ServerFilter of the paper communicate
// exclusively through this interface, so evaluation and message counts in
// the experiments include exactly the round-trips the prototype made.
//
// The protocol is strictly request/response. Clients serialize concurrent
// calls; servers handle each connection in its own goroutine.
//
// # Tenants (frame version 2)
//
// A v2 request frame carries a tenant name, and a server dispatches each
// call against that tenant's handler set — how one process serves many
// independent encrypted tables. The frame format is gob, so the version
// bump is bidirectionally graceful: a v1 client's frames decode with an
// empty tenant and route to the server's designated default tenant, and
// a v1 server silently ignores the extra fields (which is why clients
// naming a non-default tenant must verify the server speaks v2 first —
// see the runtime's ResolveTenant handshake in internal/server).
// Handlers registered under the empty tenant name are global: reachable
// from every tenant, which is how protocol-negotiation and admin
// methods stay tenant-independent.
package rmi

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"encshare/internal/obs"
)

// maxFrame bounds a single message; a frame larger than this indicates
// corruption or protocol mismatch.
const maxFrame = 64 << 20

// RemoteError is an error returned by the remote handler (as opposed to a
// transport failure). A RemoteError means the server received the call
// and answered it: retrying the same call — here or on a byte-identical
// replica — would deterministically fail again.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rmi: remote: " + e.Msg }

// TransportError is a failure of the connection itself — the frame never
// arrived, the reply never came back, or the stream desynchronized. The
// call may or may not have executed server-side, but for a read-only
// protocol it is always safe to retry, and against a replicated shard it
// is the signal to fail over to another replica.
type TransportError struct {
	Method string
	Err    error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("rmi: transport: %s: %v", e.Method, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// unknownMethodPrefix starts the RemoteError message for a method the
// server does not expose; IsUnknownMethod is the public contract, so the
// wording can change without breaking callers. unknownTenantPrefix is
// its tenant-level analogue.
const (
	unknownMethodPrefix = "unknown method "
	unknownTenantPrefix = "unknown tenant "
)

// IsUnknownMethod reports whether err says the server does not expose
// the named method — how clients feature-detect protocol extensions.
// The match is exact against the server's dispatch reply, so a handler
// whose own error text merely resembles it cannot trigger a false
// downgrade.
func IsUnknownMethod(err error, method string) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Msg == unknownMethodPrefix+method
}

// IsUnknownTenant reports whether err says the server does not host the
// named tenant.
func IsUnknownTenant(err error, tenant string) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Msg == unknownTenantPrefix+tenant
}

// ErrUnknownTenant is the error a handler returns to reject a tenant by
// name with the same reply text the dispatcher itself uses — so
// IsUnknownTenant matches both producers and the wording lives in one
// package.
func ErrUnknownTenant(tenant string) error {
	return errors.New(unknownTenantPrefix + tenant)
}

// FrameVersion is the request frame version this client sends. Version
// 2 added the Tenant field; version-0 frames (from pre-tenant clients,
// whose request struct had neither field) decode identically to a v2
// frame with an empty tenant.
//
// The Trace/Span fields ride on v2 without a version bump: gob omits
// zero-valued fields from the stream, so an untraced frame is
// byte-identical to a pre-trace frame, a pre-trace server silently
// drops the fields from a traced client, and a pre-trace client's
// frames decode here with a zero-valued trace context.
//
// The Epoch field rides the same way: 0 means "unpinned" and encodes to
// the pre-epoch wire bytes, so read-only clients and old servers are
// unaffected.
const FrameVersion = 2

type request struct {
	Seq    uint64
	Method string
	Body   []byte
	Ver    uint8
	Tenant string
	Trace  uint64
	Span   uint64
	Epoch  uint64
}

type response struct {
	Seq  uint64
	Err  string
	Body []byte
}

// HandlerFunc processes one call: gob-encoded args in, gob-encoded reply
// out.
type HandlerFunc func(body []byte) ([]byte, error)

// Server dispatches incoming calls to registered handlers. Safe for
// concurrent use. Handler sets are keyed by tenant name; the empty name
// holds the global set, which doubles as the legacy single-tenant
// registration target and as the fallback for tenant-independent
// methods (a method missing from a tenant's set is looked up globally
// before the call fails).
type Server struct {
	mu            sync.RWMutex
	tenants       map[string]map[string]HandlerFunc
	defaultTenant string

	// Stats
	calls     atomic.Int64
	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	listeners sync.WaitGroup

	// Graceful shutdown: closing flips first, the drain lock waits out
	// frames already being handled (each frame holds a read lock from
	// dispatch through reply write), then tracked connections close.
	closing atomic.Bool
	drain   sync.RWMutex
	connMu  sync.Mutex
	conns   map[net.Conn]struct{}

	// metrics is nil until SetMetrics attaches a registry; the hot path
	// pays only this pointer load when no one is scraping.
	metrics atomic.Pointer[serverMetrics]

	// gate, when set, brackets every dispatched frame (see SetGate); nil
	// until a runtime with epoch-fenced data installs one.
	gate atomic.Pointer[GateFunc]
}

// GateFunc admits or rejects one frame before its handler runs. It
// receives the frame's tenant (as sent — "" means the server default),
// method, and pinned epoch (0 = unpinned), and either returns a release
// callback that ServeConn invokes after the handler's reply is built,
// or an error that becomes the frame's remote error. The server runtime
// uses this to fence reads against a data epoch: a frame pinned to a
// stale epoch is refused here, atomically with respect to mutations,
// instead of racing them inside the handler.
type GateFunc func(tenant, method string, epoch uint64) (release func(), err error)

// SetGate installs (or, with nil, removes) the per-frame gate. Safe to
// call while serving; frames already past their gate check complete
// under the gate they acquired.
func (s *Server) SetGate(fn GateFunc) {
	if fn == nil {
		s.gate.Store(nil)
		return
	}
	s.gate.Store(&fn)
}

// serverMetrics holds the instruments ServeConn touches per frame.
type serverMetrics struct {
	reg    *obs.Registry
	traced *obs.Counter
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{
		tenants: map[string]map[string]HandlerFunc{"": {}},
		conns:   map[net.Conn]struct{}{},
	}
}

// Handle registers fn under the method name in the global handler set.
// Registering a duplicate name panics (a programming error).
func (s *Server) Handle(method string, fn HandlerFunc) {
	s.HandleAt("", method, fn)
}

// HandleAt registers fn under the method name in the named tenant's
// handler set (the empty tenant is the global set). Registering a
// duplicate (tenant, method) pair panics.
func (s *Server) HandleAt(tenant, method string, fn HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	set := s.tenants[tenant]
	if set == nil {
		set = map[string]HandlerFunc{}
		s.tenants[tenant] = set
	}
	if _, dup := set[method]; dup {
		panic("rmi: duplicate handler for " + tenant + "/" + method)
	}
	set[method] = fn
}

// DropTenant removes a tenant's entire handler set, reporting whether it
// existed. In-flight calls already dispatched to its handlers complete;
// later frames naming the tenant get an unknown-tenant error. The global
// set cannot be dropped.
func (s *Server) DropTenant(tenant string) bool {
	if tenant == "" {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tenants[tenant]; !ok {
		return false
	}
	delete(s.tenants, tenant)
	if s.defaultTenant == tenant {
		s.defaultTenant = ""
	}
	return true
}

// SetDefaultTenant names the tenant that calls carrying no tenant (v1
// clients, or v2 clients that never set one) are routed to — the
// graceful-downgrade rule that keeps pre-tenant client binaries working
// against a multi-tenant server. An empty name restores the global set
// as the target.
func (s *Server) SetDefaultTenant(tenant string) {
	s.mu.Lock()
	s.defaultTenant = tenant
	s.mu.Unlock()
}

// Tenants returns the named tenants with registered handler sets (the
// global set is not listed).
func (s *Server) Tenants() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tenants)-1)
	for name := range s.tenants {
		if name != "" {
			out = append(out, name)
		}
	}
	return out
}

// HandleFunc registers a typed handler: decode Args, call, encode Reply.
func HandleFunc[Args any, Reply any](s *Server, method string, fn func(Args) (Reply, error)) {
	HandleFuncAt(s, "", method, fn)
}

// HandleFuncAt is HandleFunc targeting a tenant's handler set.
func HandleFuncAt[Args any, Reply any](s *Server, tenant, method string, fn func(Args) (Reply, error)) {
	s.HandleAt(tenant, method, func(body []byte) ([]byte, error) {
		var args Args
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&args); err != nil {
			return nil, fmt.Errorf("decoding args: %w", err)
		}
		reply, err := fn(args)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&reply); err != nil {
			return nil, fmt.Errorf("encoding reply: %w", err)
		}
		return buf.Bytes(), nil
	})
}

// lookup resolves a request's tenant and method to a handler, or to the
// error message the response should carry.
func (s *Server) lookup(tenant, method string) (HandlerFunc, string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	name := tenant
	if name == "" {
		name = s.defaultTenant
	}
	set, known := s.tenants[name]
	if fn, ok := set[method]; ok {
		return fn, ""
	}
	// Tenant-independent methods (protocol negotiation, admin) live in
	// the global set and answer under any tenant, known or not.
	if fn, ok := s.tenants[""][method]; ok {
		return fn, ""
	}
	if !known {
		return nil, unknownTenantPrefix + name
	}
	return nil, unknownMethodPrefix + method
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				s.listeners.Wait()
				return nil
			}
			return fmt.Errorf("rmi: accept: %w", err)
		}
		s.listeners.Add(1)
		go func() {
			defer s.listeners.Done()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn serves a single connection until EOF, error, or server
// shutdown.
func (s *Server) ServeConn(conn net.Conn) {
	s.connMu.Lock()
	if s.closing.Load() {
		s.connMu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	for {
		var req request
		n, err := readFrame(conn, &req)
		if err != nil {
			return // EOF or broken peer: nothing to report to
		}
		// The read lock brackets one frame: Shutdown's write lock
		// cannot proceed until every frame already past the closing
		// check has written its reply.
		s.drain.RLock()
		if s.closing.Load() {
			s.drain.RUnlock()
			return
		}
		s.bytesIn.Add(int64(n))
		s.calls.Add(1)
		fn, errMsg := s.lookup(req.Tenant, req.Method)
		m := s.metrics.Load()
		if m != nil && req.Trace != 0 {
			m.traced.Inc()
		}
		var resp response
		resp.Seq = req.Seq
		if fn == nil {
			resp.Err = errMsg
		} else if release, gerr := s.admit(req.Tenant, req.Method, req.Epoch); gerr != nil {
			resp.Err = gerr.Error()
		} else {
			start := time.Time{}
			if m != nil {
				start = time.Now()
			}
			body, err := fn(req.Body)
			if release != nil {
				release()
			}
			if m != nil {
				m.reg.Histogram("rmi_server_call_seconds", "handler latency by method",
					obs.Labels{"method": req.Method}).Observe(time.Since(start))
			}
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Body = body
			}
		}
		n, err = writeFrame(conn, &resp)
		s.drain.RUnlock()
		if err != nil {
			return
		}
		s.bytesOut.Add(int64(n))
		if s.closing.Load() {
			return
		}
	}
}

// admit runs the installed gate, if any, for one frame.
func (s *Server) admit(tenant, method string, epoch uint64) (func(), error) {
	g := s.gate.Load()
	if g == nil {
		return nil, nil
	}
	return (*g)(tenant, method, epoch)
}

// drainTimeout bounds how long Shutdown waits for in-flight frames: a
// peer that requested a reply and then stopped reading would otherwise
// hold its ServeConn goroutine in a blocked write forever, and the
// drain barrier with it. A variable so tests can shrink it.
var drainTimeout = 5 * time.Second

// Shutdown drains the server: frames already being handled complete and
// their replies are written (bounded by drainTimeout — a peer that
// stopped reading has its reply write cut off instead of hanging the
// shutdown), no new frame is dispatched, and every tracked connection
// is then closed, which unblocks ServeConn readers and lets Serve
// return once its listener is closed. Safe to call more than once.
func (s *Server) Shutdown() {
	s.closing.Store(true)
	// Bound the drain: any conn I/O still pending past the deadline
	// errors out and releases its read lock.
	deadline := time.Now().Add(drainTimeout)
	s.connMu.Lock()
	for c := range s.conns {
		c.SetDeadline(deadline)
	}
	s.connMu.Unlock()
	// Barrier: wait for every in-flight frame (dispatch through reply
	// write) to release its read lock.
	s.drain.Lock()
	s.drain.Unlock() //nolint:staticcheck // empty critical section is the drain barrier
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.listeners.Wait()
}

// ServerStats is a snapshot of server-side traffic counters.
type ServerStats struct {
	Calls    int64
	BytesIn  int64
	BytesOut int64
}

// Stats returns a snapshot of the traffic counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Calls:    s.calls.Load(),
		BytesIn:  s.bytesIn.Load(),
		BytesOut: s.bytesOut.Load(),
	}
}

// SetMetrics registers this server's instruments into reg and turns on
// per-method latency histograms. The existing traffic counters are
// exposed as func-backed series (read at scrape time, never copied);
// only the per-frame histogram Observe and the traced-frame counter are
// new work, and both happen only after a registry is attached.
func (s *Server) SetMetrics(reg *obs.Registry) {
	reg.CounterFunc("rmi_server_calls_total", "frames dispatched", nil, s.calls.Load)
	reg.CounterFunc("rmi_server_bytes_in_total", "request bytes received", nil, s.bytesIn.Load)
	reg.CounterFunc("rmi_server_bytes_out_total", "reply bytes written", nil, s.bytesOut.Load)
	m := &serverMetrics{
		reg:    reg,
		traced: reg.Counter("rmi_server_traced_frames_total", "frames carrying a trace context", nil),
	}
	s.metrics.Store(m)
}

// Client issues calls over one connection. Safe for concurrent use; calls
// are serialized.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	seq    uint64
	tenant string
	epoch  uint64

	calls    atomic.Int64
	bytesOut atomic.Int64
	bytesIn  atomic.Int64
}

// Dial connects to a server at addr (TCP).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rmi: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetTenant names the tenant every subsequent call is issued against.
// An empty name (the default) routes to the server's default tenant —
// the wire frames are then indistinguishable from a pre-tenant
// client's, so old servers keep working. Callers naming a non-default
// tenant should verify the server speaks the tenant protocol first
// (see internal/server.ResolveTenant).
func (c *Client) SetTenant(tenant string) {
	c.mu.Lock()
	c.tenant = tenant
	c.mu.Unlock()
}

// Tenant returns the tenant set with SetTenant ("" if none).
func (c *Client) Tenant() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenant
}

// SetEpoch pins every subsequent call to a data epoch. Zero (the
// default) means unpinned — the frame bytes are then identical to a
// pre-epoch client's, and epoch-unaware servers keep working. A server
// with an epoch gate refuses pinned frames whose epoch has passed, so
// the caller sees a consistent snapshot or a typed stale-epoch error,
// never a torn read.
func (c *Client) SetEpoch(epoch uint64) {
	c.mu.Lock()
	c.epoch = epoch
	c.mu.Unlock()
}

// Epoch returns the epoch pinned with SetEpoch (0 if unpinned).
func (c *Client) Epoch() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// TraceContext identifies the trace (and the client-side span issuing
// the call) a frame belongs to. The zero value means "untraced" and
// encodes to exactly the pre-trace wire bytes.
type TraceContext struct {
	Trace uint64
	Span  uint64
}

// FrameInfo reports the wire cost of one completed call.
type FrameInfo struct {
	BytesOut int
	BytesIn  int
}

// Call invokes method with gob-encoded args, decoding the reply into
// reply (a pointer), and returns a *RemoteError if the handler failed.
func (c *Client) Call(method string, args any, reply any) error {
	_, err := c.doCall(method, args, reply, TraceContext{})
	return err
}

// CallTraced is Call with a trace context stamped into the frame header
// and the frame's byte counts returned — the hook the filter proxy uses
// to record frame spans.
func (c *Client) CallTraced(method string, args any, reply any, tc TraceContext) (FrameInfo, error) {
	return c.doCall(method, args, reply, tc)
}

func (c *Client) doCall(method string, args any, reply any, tc TraceContext) (FrameInfo, error) {
	var fi FrameInfo
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(args); err != nil {
		return fi, fmt.Errorf("rmi: encoding args for %s: %w", method, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	req := request{Seq: c.seq, Method: method, Body: body.Bytes(), Ver: FrameVersion, Tenant: c.tenant, Trace: tc.Trace, Span: tc.Span, Epoch: c.epoch}
	n, err := writeFrame(c.conn, &req)
	if err != nil {
		return fi, &TransportError{Method: method, Err: fmt.Errorf("sending: %w", err)}
	}
	c.bytesOut.Add(int64(n))
	fi.BytesOut = n
	var resp response
	n, err = readFrame(c.conn, &resp)
	if err != nil {
		return fi, &TransportError{Method: method, Err: fmt.Errorf("receiving reply: %w", err)}
	}
	c.bytesIn.Add(int64(n))
	c.calls.Add(1)
	fi.BytesIn = n
	if resp.Seq != req.Seq {
		return fi, &TransportError{Method: method, Err: fmt.Errorf("reply sequence %d for request %d", resp.Seq, req.Seq)}
	}
	if resp.Err != "" {
		return fi, &RemoteError{Msg: resp.Err}
	}
	if reply != nil {
		if err := gob.NewDecoder(bytes.NewReader(resp.Body)).Decode(reply); err != nil {
			return fi, &TransportError{Method: method, Err: fmt.Errorf("decoding reply: %w", err)}
		}
	}
	return fi, nil
}

// ClientStats is a snapshot of client-side traffic counters.
type ClientStats struct {
	Calls    int64
	BytesOut int64
	BytesIn  int64
}

// Stats returns a snapshot of the traffic counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Calls:    c.calls.Load(),
		BytesOut: c.bytesOut.Load(),
		BytesIn:  c.bytesIn.Load(),
	}
}

// Pipe returns a connected in-process client/server pair: the returned
// client talks to srv over a net.Pipe, with the server goroutine running
// until the client closes. Used by tests and by single-process setups
// that still want the exact remote code path.
func Pipe(srv *Server) *Client {
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	return NewClient(cConn)
}

// writeFrame writes a 4-byte big-endian length followed by the gob
// encoding of v, returning total bytes written.
func writeFrame(w io.Writer, v any) (int, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0, err
	}
	b := buf.Bytes()
	payload := len(b) - 4
	if payload > maxFrame {
		return 0, fmt.Errorf("frame of %d bytes exceeds limit", payload)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(payload))
	n, err := w.Write(b)
	return n, err
}

// readFrame reads one length-prefixed gob frame into v, returning total
// bytes read.
func readFrame(r io.Reader, v any) (int, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return 0, err
	}
	size := binary.BigEndian.Uint32(lenbuf[:])
	if size > maxFrame {
		return 0, fmt.Errorf("frame of %d bytes exceeds limit", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, err
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		return 0, err
	}
	return 4 + int(size), nil
}
