// Package rmi is the repo's stand-in for Java RMI (paper §5.2): a small
// synchronous RPC layer with gob-encoded, length-prefixed frames over any
// net.Conn. The ClientFilter and ServerFilter of the paper communicate
// exclusively through this interface, so evaluation and message counts in
// the experiments include exactly the round-trips the prototype made.
//
// The protocol is strictly request/response. Clients serialize concurrent
// calls; servers handle each connection in its own goroutine.
package rmi

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// maxFrame bounds a single message; a frame larger than this indicates
// corruption or protocol mismatch.
const maxFrame = 64 << 20

// RemoteError is an error returned by the remote handler (as opposed to a
// transport failure). A RemoteError means the server received the call
// and answered it: retrying the same call — here or on a byte-identical
// replica — would deterministically fail again.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "rmi: remote: " + e.Msg }

// TransportError is a failure of the connection itself — the frame never
// arrived, the reply never came back, or the stream desynchronized. The
// call may or may not have executed server-side, but for a read-only
// protocol it is always safe to retry, and against a replicated shard it
// is the signal to fail over to another replica.
type TransportError struct {
	Method string
	Err    error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("rmi: transport: %s: %v", e.Method, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// unknownMethodPrefix starts the RemoteError message for a method the
// server does not expose; IsUnknownMethod is the public contract, so the
// wording can change without breaking callers.
const unknownMethodPrefix = "unknown method "

// IsUnknownMethod reports whether err says the server does not expose
// the named method — how clients feature-detect protocol extensions.
// The match is exact against the server's dispatch reply, so a handler
// whose own error text merely resembles it cannot trigger a false
// downgrade.
func IsUnknownMethod(err error, method string) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Msg == unknownMethodPrefix+method
}

type request struct {
	Seq    uint64
	Method string
	Body   []byte
}

type response struct {
	Seq  uint64
	Err  string
	Body []byte
}

// HandlerFunc processes one call: gob-encoded args in, gob-encoded reply
// out.
type HandlerFunc func(body []byte) ([]byte, error)

// Server dispatches incoming calls to registered handlers. Safe for
// concurrent use.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]HandlerFunc

	// Stats
	calls     atomic.Int64
	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	listeners sync.WaitGroup
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{handlers: map[string]HandlerFunc{}}
}

// Handle registers fn under the method name. Registering a duplicate name
// panics (a programming error).
func (s *Server) Handle(method string, fn HandlerFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.handlers[method]; dup {
		panic("rmi: duplicate handler for " + method)
	}
	s.handlers[method] = fn
}

// HandleFunc registers a typed handler: decode Args, call, encode Reply.
func HandleFunc[Args any, Reply any](s *Server, method string, fn func(Args) (Reply, error)) {
	s.Handle(method, func(body []byte) ([]byte, error) {
		var args Args
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&args); err != nil {
			return nil, fmt.Errorf("decoding args: %w", err)
		}
		reply, err := fn(args)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&reply); err != nil {
			return nil, fmt.Errorf("encoding reply: %w", err)
		}
		return buf.Bytes(), nil
	})
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				s.listeners.Wait()
				return nil
			}
			return fmt.Errorf("rmi: accept: %w", err)
		}
		s.listeners.Add(1)
		go func() {
			defer s.listeners.Done()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn serves a single connection until EOF or error.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	for {
		var req request
		n, err := readFrame(conn, &req)
		if err != nil {
			return // EOF or broken peer: nothing to report to
		}
		s.bytesIn.Add(int64(n))
		s.calls.Add(1)
		s.mu.RLock()
		fn, ok := s.handlers[req.Method]
		s.mu.RUnlock()
		var resp response
		resp.Seq = req.Seq
		if !ok {
			resp.Err = unknownMethodPrefix + req.Method
		} else {
			body, err := fn(req.Body)
			if err != nil {
				resp.Err = err.Error()
			} else {
				resp.Body = body
			}
		}
		n, err = writeFrame(conn, &resp)
		if err != nil {
			return
		}
		s.bytesOut.Add(int64(n))
	}
}

// ServerStats is a snapshot of server-side traffic counters.
type ServerStats struct {
	Calls    int64
	BytesIn  int64
	BytesOut int64
}

// Stats returns a snapshot of the traffic counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Calls:    s.calls.Load(),
		BytesIn:  s.bytesIn.Load(),
		BytesOut: s.bytesOut.Load(),
	}
}

// Client issues calls over one connection. Safe for concurrent use; calls
// are serialized.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	seq  uint64

	calls    atomic.Int64
	bytesOut atomic.Int64
	bytesIn  atomic.Int64
}

// Dial connects to a server at addr (TCP).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rmi: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Call invokes method with gob-encoded args, decoding the reply into
// reply (a pointer), and returns a *RemoteError if the handler failed.
func (c *Client) Call(method string, args any, reply any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(args); err != nil {
		return fmt.Errorf("rmi: encoding args for %s: %w", method, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	req := request{Seq: c.seq, Method: method, Body: body.Bytes()}
	n, err := writeFrame(c.conn, &req)
	if err != nil {
		return &TransportError{Method: method, Err: fmt.Errorf("sending: %w", err)}
	}
	c.bytesOut.Add(int64(n))
	var resp response
	n, err = readFrame(c.conn, &resp)
	if err != nil {
		return &TransportError{Method: method, Err: fmt.Errorf("receiving reply: %w", err)}
	}
	c.bytesIn.Add(int64(n))
	c.calls.Add(1)
	if resp.Seq != req.Seq {
		return &TransportError{Method: method, Err: fmt.Errorf("reply sequence %d for request %d", resp.Seq, req.Seq)}
	}
	if resp.Err != "" {
		return &RemoteError{Msg: resp.Err}
	}
	if reply != nil {
		if err := gob.NewDecoder(bytes.NewReader(resp.Body)).Decode(reply); err != nil {
			return &TransportError{Method: method, Err: fmt.Errorf("decoding reply: %w", err)}
		}
	}
	return nil
}

// ClientStats is a snapshot of client-side traffic counters.
type ClientStats struct {
	Calls    int64
	BytesOut int64
	BytesIn  int64
}

// Stats returns a snapshot of the traffic counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Calls:    c.calls.Load(),
		BytesOut: c.bytesOut.Load(),
		BytesIn:  c.bytesIn.Load(),
	}
}

// Pipe returns a connected in-process client/server pair: the returned
// client talks to srv over a net.Pipe, with the server goroutine running
// until the client closes. Used by tests and by single-process setups
// that still want the exact remote code path.
func Pipe(srv *Server) *Client {
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	return NewClient(cConn)
}

// writeFrame writes a 4-byte big-endian length followed by the gob
// encoding of v, returning total bytes written.
func writeFrame(w io.Writer, v any) (int, error) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return 0, err
	}
	b := buf.Bytes()
	payload := len(b) - 4
	if payload > maxFrame {
		return 0, fmt.Errorf("frame of %d bytes exceeds limit", payload)
	}
	binary.BigEndian.PutUint32(b[:4], uint32(payload))
	n, err := w.Write(b)
	return n, err
}

// readFrame reads one length-prefixed gob frame into v, returning total
// bytes read.
func readFrame(r io.Reader, v any) (int, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(r, lenbuf[:]); err != nil {
		return 0, err
	}
	size := binary.BigEndian.Uint32(lenbuf[:])
	if size > maxFrame {
		return 0, fmt.Errorf("frame of %d bytes exceeds limit", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, err
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		return 0, err
	}
	return 4 + int(size), nil
}
