package rmi

import (
	"bytes"
	"encoding/gob"
	"net"
	"sync"
	"testing"
	"time"
)

// tenantServer registers an echo-style method under two tenants plus a
// global method, mirroring how the runtime lays out handler sets.
func tenantServer() *Server {
	srv := NewServer()
	HandleFuncAt(srv, "alpha", "t.Who", func(struct{}) (string, error) { return "alpha", nil })
	HandleFuncAt(srv, "beta", "t.Who", func(struct{}) (string, error) { return "beta", nil })
	HandleFunc(srv, "t.Global", func(struct{}) (string, error) { return "global", nil })
	return srv
}

func TestTenantDispatch(t *testing.T) {
	srv := tenantServer()
	for _, tenant := range []string{"alpha", "beta"} {
		cli := Pipe(srv)
		cli.SetTenant(tenant)
		var who string
		if err := cli.Call("t.Who", struct{}{}, &who); err != nil {
			t.Fatalf("Call(%s): %v", tenant, err)
		}
		if who != tenant {
			t.Errorf("tenant %s answered by %s", tenant, who)
		}
		var g string
		if err := cli.Call("t.Global", struct{}{}, &g); err != nil || g != "global" {
			t.Errorf("global method under tenant %s: %q, %v", tenant, g, err)
		}
		cli.Close()
	}
}

func TestUnknownTenant(t *testing.T) {
	srv := tenantServer()
	cli := Pipe(srv)
	defer cli.Close()
	cli.SetTenant("gamma")
	err := cli.Call("t.Who", struct{}{}, new(string))
	if !IsUnknownTenant(err, "gamma") {
		t.Fatalf("want unknown-tenant error, got %v", err)
	}
	// The global set still answers under an unknown tenant: protocol
	// negotiation must work before the tenant is validated.
	var g string
	if err := cli.Call("t.Global", struct{}{}, &g); err != nil || g != "global" {
		t.Fatalf("global method under unknown tenant: %q, %v", g, err)
	}
}

func TestDefaultTenantMapping(t *testing.T) {
	srv := tenantServer()
	cli := Pipe(srv)
	defer cli.Close()
	// No default designated: a bare client finds only the global set.
	err := cli.Call("t.Who", struct{}{}, new(string))
	if !IsUnknownMethod(err, "t.Who") {
		t.Fatalf("want unknown-method before default set, got %v", err)
	}
	srv.SetDefaultTenant("beta")
	var who string
	if err := cli.Call("t.Who", struct{}{}, &who); err != nil || who != "beta" {
		t.Fatalf("default-tenant call: %q, %v", who, err)
	}
	// A method the tenant does not expose stays unknown-method (the
	// tenant itself is known).
	err = cli.Call("t.Missing", struct{}{}, nil)
	if !IsUnknownMethod(err, "t.Missing") {
		t.Fatalf("want unknown-method, got %v", err)
	}
}

func TestDropTenant(t *testing.T) {
	srv := tenantServer()
	cli := Pipe(srv)
	defer cli.Close()
	cli.SetTenant("alpha")
	if err := cli.Call("t.Who", struct{}{}, new(string)); err != nil {
		t.Fatalf("before drop: %v", err)
	}
	if !srv.DropTenant("alpha") {
		t.Fatal("DropTenant(alpha) = false")
	}
	if srv.DropTenant("alpha") {
		t.Fatal("second DropTenant(alpha) = true")
	}
	err := cli.Call("t.Who", struct{}{}, new(string))
	if !IsUnknownTenant(err, "alpha") {
		t.Fatalf("after drop: want unknown-tenant, got %v", err)
	}
	if got := srv.Tenants(); len(got) != 1 || got[0] != "beta" {
		t.Fatalf("Tenants() = %v, want [beta]", got)
	}
}

// TestLegacyFrameDecodesAsDefaultTenant pins the downgrade rule at the
// wire level: a frame encoded from the pre-tenant request struct (no
// Ver, no Tenant field) must decode and route to the default tenant.
func TestLegacyFrameDecodesAsDefaultTenant(t *testing.T) {
	type legacyRequest struct {
		Seq    uint64
		Method string
		Body   []byte
	}
	srv := tenantServer()
	srv.SetDefaultTenant("alpha")
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	defer cConn.Close()

	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(struct{}{}); err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(cConn, &legacyRequest{Seq: 1, Method: "t.Who", Body: body.Bytes()}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if _, err := readFrame(cConn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("legacy frame rejected: %s", resp.Err)
	}
}

// TestShutdownDrainsInFlightFrame pins graceful shutdown: a frame being
// handled when Shutdown is called still gets its reply, and Shutdown
// does not return before that reply is written.
func TestShutdownDrainsInFlightFrame(t *testing.T) {
	srv := NewServer()
	entered := make(chan struct{})
	release := make(chan struct{})
	HandleFunc(srv, "slow", func(struct{}) (string, error) {
		close(entered)
		<-release
		return "done", nil
	})
	cli := Pipe(srv)
	defer cli.Close()

	callErr := make(chan error, 1)
	var reply string
	go func() { callErr <- cli.Call("slow", struct{}{}, &reply) }()
	<-entered

	shutdownDone := make(chan struct{})
	go func() { srv.Shutdown(); close(shutdownDone) }()
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a frame was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-callErr; err != nil {
		t.Fatalf("in-flight call failed across shutdown: %v", err)
	}
	if reply != "done" {
		t.Fatalf("reply = %q", reply)
	}
	select {
	case <-shutdownDone:
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown did not return after the frame drained")
	}
	// The connection is closed now: the next call fails with a
	// transport error, not a hang.
	if err := cli.Call("slow", struct{}{}, nil); err == nil {
		t.Fatal("call after shutdown succeeded")
	}
}

// TestShutdownSurvivesStuckPeer: a peer that requested a reply and then
// stopped reading leaves its ServeConn goroutine blocked mid-write;
// Shutdown must cut that write at the drain deadline instead of
// hanging forever.
func TestShutdownSurvivesStuckPeer(t *testing.T) {
	old := drainTimeout
	drainTimeout = 100 * time.Millisecond
	defer func() { drainTimeout = old }()

	srv := NewServer()
	big := make([]byte, 1<<20)
	HandleFunc(srv, "big", func(struct{}) ([]byte, error) { return big, nil })
	cConn, sConn := net.Pipe() // unbuffered: the reply write blocks until read
	go srv.ServeConn(sConn)
	defer cConn.Close()
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(struct{}{}); err != nil {
		t.Fatal(err)
	}
	if _, err := writeFrame(cConn, &request{Seq: 1, Method: "big", Body: body.Bytes(), Ver: FrameVersion}); err != nil {
		t.Fatal(err)
	}
	// Never read the reply; give the server a moment to block in the
	// write.
	time.Sleep(20 * time.Millisecond)

	done := make(chan struct{})
	go func() { srv.Shutdown(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on a peer that stopped reading")
	}
}

// TestShutdownStopsNewConnections verifies a TCP server exits cleanly:
// Serve returns nil after the listener closes and Shutdown drains.
func TestShutdownStopsNewConnections(t *testing.T) {
	srv := NewServer()
	HandleFunc(srv, "ping", func(struct{}) (bool, error) { return true, nil })
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	cli, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Call("ping", struct{}{}, nil); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); srv.Shutdown() }()
	l.Close()
	wg.Wait()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v after graceful shutdown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return")
	}
	cli.Close()
}
