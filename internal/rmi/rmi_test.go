package rmi

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

type echoArgs struct {
	S string
	N int64
}

func newEchoServer() *Server {
	srv := NewServer()
	HandleFunc(srv, "echo", func(a echoArgs) (echoArgs, error) {
		return a, nil
	})
	HandleFunc(srv, "fail", func(a echoArgs) (echoArgs, error) {
		return echoArgs{}, errors.New("boom: " + a.S)
	})
	HandleFunc(srv, "add", func(a [2]int64) (int64, error) {
		return a[0] + a[1], nil
	})
	return srv
}

func TestPipeRoundTrip(t *testing.T) {
	cli := Pipe(newEchoServer())
	defer cli.Close()
	var out echoArgs
	if err := cli.Call("echo", echoArgs{S: "hi", N: 42}, &out); err != nil {
		t.Fatal(err)
	}
	if out.S != "hi" || out.N != 42 {
		t.Fatalf("echo = %+v", out)
	}
	var sum int64
	if err := cli.Call("add", [2]int64{20, 22}, &sum); err != nil {
		t.Fatal(err)
	}
	if sum != 42 {
		t.Fatalf("add = %d", sum)
	}
}

func TestRemoteError(t *testing.T) {
	cli := Pipe(newEchoServer())
	defer cli.Close()
	var out echoArgs
	err := cli.Call("fail", echoArgs{S: "reason"}, &out)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error %v is not RemoteError", err)
	}
	if !strings.Contains(re.Msg, "reason") {
		t.Fatalf("remote error lost message: %q", re.Msg)
	}
}

func TestUnknownMethod(t *testing.T) {
	cli := Pipe(newEchoServer())
	defer cli.Close()
	err := cli.Call("nope", echoArgs{}, nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "unknown method") {
		t.Fatalf("err = %v", err)
	}
}

func TestTCPServe(t *testing.T) {
	srv := newEchoServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()

	cli, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var out echoArgs
	if err := cli.Call("echo", echoArgs{S: "tcp"}, &out); err != nil {
		t.Fatal(err)
	}
	if out.S != "tcp" {
		t.Fatalf("echo over TCP = %+v", out)
	}
	cli.Close()
	l.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}

func TestConcurrentCallsSerialized(t *testing.T) {
	cli := Pipe(newEchoServer())
	defer cli.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int64) {
			defer wg.Done()
			for i := int64(0); i < 20; i++ {
				var sum int64
				if err := cli.Call("add", [2]int64{g, i}, &sum); err != nil {
					errs <- err
					return
				}
				if sum != g+i {
					errs <- errors.New("wrong sum")
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestStatsCounted(t *testing.T) {
	srv := newEchoServer()
	cli := Pipe(srv)
	defer cli.Close()
	for i := 0; i < 5; i++ {
		var out echoArgs
		if err := cli.Call("echo", echoArgs{S: "x"}, &out); err != nil {
			t.Fatal(err)
		}
	}
	cs := cli.Stats()
	// The server bumps its counters just after its write unblocks, so give
	// its goroutine a moment to finish accounting for the last reply.
	var ss ServerStats
	deadline := time.Now().Add(2 * time.Second)
	for {
		ss = srv.Stats()
		if ss.BytesOut == cs.BytesIn || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if cs.Calls != 5 || ss.Calls != 5 {
		t.Fatalf("calls: client %d server %d", cs.Calls, ss.Calls)
	}
	if cs.BytesOut == 0 || cs.BytesIn == 0 || ss.BytesIn == 0 || ss.BytesOut == 0 {
		t.Fatalf("byte counters zero: %+v %+v", cs, ss)
	}
	if cs.BytesOut != ss.BytesIn || cs.BytesIn != ss.BytesOut {
		t.Fatalf("byte counters disagree: %+v vs %+v", cs, ss)
	}
}

func TestDuplicateHandlerPanics(t *testing.T) {
	srv := NewServer()
	srv.Handle("m", func(b []byte) ([]byte, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle did not panic")
		}
	}()
	srv.Handle("m", func(b []byte) ([]byte, error) { return nil, nil })
}

func TestNilReplyDiscardsBody(t *testing.T) {
	cli := Pipe(newEchoServer())
	defer cli.Close()
	if err := cli.Call("echo", echoArgs{S: "discard"}, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPipeCall(b *testing.B) {
	cli := Pipe(newEchoServer())
	defer cli.Close()
	for i := 0; i < b.N; i++ {
		var sum int64
		if err := cli.Call("add", [2]int64{1, 2}, &sum); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPCall(b *testing.B) {
	srv := newEchoServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	cli, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		if err := cli.Call("add", [2]int64{1, 2}, &sum); err != nil {
			b.Fatal(err)
		}
	}
}
