package rmi

import (
	"bytes"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"encshare/internal/obs"
)

// TestUntracedValueBytesUnchanged pins the zero-overhead rule: gob
// omits zero-valued fields from the value section, so an untraced
// request's value bytes are identical to a pre-trace client's (the
// one-time type descriptor is the only difference, and only because it
// names the new fields). The test compares the second message on a
// shared encoder stream — descriptors ride only on the first — between
// the old and new struct shapes, and then checks that a nonzero trace
// context actually does add bytes (proving the fields were omitted, not
// merely compressed).
func TestUntracedValueBytesUnchanged(t *testing.T) {
	// Pre-trace shape, shadowing the package type so the gob stream
	// carries the same wire name ("request").
	oldValue := func() []byte {
		type request struct {
			Seq    uint64
			Method string
			Body   []byte
			Ver    uint8
			Tenant string
		}
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		r := request{Seq: 7, Method: "m", Body: []byte{9}, Ver: FrameVersion, Tenant: "acme"}
		if err := enc.Encode(&r); err != nil {
			t.Fatal(err)
		}
		mark := buf.Len()
		if err := enc.Encode(&r); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), buf.Bytes()[mark:]...)
	}()

	newValue := func(tc TraceContext) []byte {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		r := request{Seq: 7, Method: "m", Body: []byte{9}, Ver: FrameVersion, Tenant: "acme", Trace: tc.Trace, Span: tc.Span}
		if err := enc.Encode(&r); err != nil {
			t.Fatal(err)
		}
		mark := buf.Len()
		if err := enc.Encode(&r); err != nil {
			t.Fatal(err)
		}
		return append([]byte(nil), buf.Bytes()[mark:]...)
	}

	untraced := newValue(TraceContext{})
	// A value message is [len][typeid][fields...]; the type id is drawn
	// from gob's process-global registry, so it differs between the two
	// struct shapes even though the field encoding is identical. Compare
	// the message length (single byte: this payload is well under 128)
	// and everything after the 2-byte type id.
	if len(oldValue) < 4 || len(untraced) < 4 {
		t.Fatalf("unexpectedly short value messages: %x / %x", oldValue, untraced)
	}
	if oldValue[0] != untraced[0] || !bytes.Equal(oldValue[3:], untraced[3:]) {
		t.Fatalf("untraced value bytes differ from pre-trace encoding:\nold %x\nnew %x", oldValue, untraced)
	}
	traced := newValue(TraceContext{Trace: 99, Span: 4})
	if len(traced) <= len(untraced) {
		t.Fatalf("traced value (%d bytes) not larger than untraced (%d): zero-field omission not exercised", len(traced), len(untraced))
	}
}

// TestTracedFrameDecodesOnPreTraceServer pins the forward direction at
// the wire level: a traced client's frame decodes into the pre-trace
// request struct (gob drops the unknown Trace/Span fields) with every
// shared field intact.
func TestTracedFrameDecodesOnPreTraceServer(t *testing.T) {
	type preTraceRequest struct {
		Seq    uint64
		Method string
		Body   []byte
		Ver    uint8
		Tenant string
	}
	var buf bytes.Buffer
	traced := request{Seq: 3, Method: "Eval", Body: []byte{1, 2}, Ver: FrameVersion, Tenant: "acme", Trace: 99, Span: 4}
	if _, err := writeFrame(&buf, &traced); err != nil {
		t.Fatal(err)
	}
	var got preTraceRequest
	if _, err := readFrame(&buf, &got); err != nil {
		t.Fatalf("pre-trace server failed to decode traced frame: %v", err)
	}
	if got.Seq != 3 || got.Method != "Eval" || !bytes.Equal(got.Body, []byte{1, 2}) || got.Ver != FrameVersion || got.Tenant != "acme" {
		t.Fatalf("shared fields corrupted: %+v", got)
	}
}

// TestPreTraceFrameDecodesWithZeroTraceContext pins the backward
// direction: a pre-trace client's frame decodes on a traced server with
// a zero-valued trace context, and the server does not count it as
// traced.
func TestPreTraceFrameDecodesWithZeroTraceContext(t *testing.T) {
	type preTraceRequest struct {
		Seq    uint64
		Method string
		Body   []byte
		Ver    uint8
		Tenant string
	}
	var buf bytes.Buffer
	if _, err := writeFrame(&buf, &preTraceRequest{Seq: 5, Method: "Eval", Ver: FrameVersion}); err != nil {
		t.Fatal(err)
	}
	var got request
	if _, err := readFrame(&buf, &got); err != nil {
		t.Fatalf("traced server failed to decode pre-trace frame: %v", err)
	}
	if got.Trace != 0 || got.Span != 0 {
		t.Fatalf("trace context not zero: trace=%d span=%d", got.Trace, got.Span)
	}
	if got.Seq != 5 || got.Method != "Eval" {
		t.Fatalf("shared fields corrupted: %+v", got)
	}
}

// TestCallTracedEndToEnd drives a traced call through a live server and
// checks the byte accounting and the traced-frame counter.
func TestCallTracedEndToEnd(t *testing.T) {
	srv := NewServer()
	HandleFunc(srv, "echo", func(s string) (string, error) { return s, nil })
	reg := obs.NewRegistry()
	srv.SetMetrics(reg)
	cli := Pipe(srv)
	defer cli.Close()

	var reply string
	fi, err := cli.CallTraced("echo", "hello", &reply, TraceContext{Trace: 11, Span: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reply != "hello" {
		t.Fatalf("reply = %q", reply)
	}
	if fi.BytesOut <= 0 || fi.BytesIn <= 0 {
		t.Fatalf("frame info not populated: %+v", fi)
	}
	// Untraced call for contrast.
	if err := cli.Call("echo", "again", &reply); err != nil {
		t.Fatal(err)
	}

	stats := cli.Stats()
	if stats.Calls != 2 {
		t.Fatalf("client calls = %d, want 2", stats.Calls)
	}
	var traced, calls, histCount float64
	for _, s := range reg.Gather() {
		switch s.Name {
		case "rmi_server_traced_frames_total":
			traced = s.Value
		case "rmi_server_calls_total":
			calls = s.Value
		case "rmi_server_call_seconds":
			if s.Hist != nil {
				histCount += float64(s.Hist.Count)
			}
		}
	}
	if traced != 1 {
		t.Fatalf("traced frames = %v, want 1", traced)
	}
	if calls != 2 {
		t.Fatalf("server calls = %v, want 2", calls)
	}
	if histCount != 2 {
		t.Fatalf("per-method histogram count = %v, want 2", histCount)
	}
}

// TestTracedClientAgainstLiveLegacyServeLoop runs the full
// traced-client-vs-v1-server exchange over a pipe: a serve loop reading
// into the pre-trace struct answers a CallTraced without error.
func TestTracedClientAgainstLiveLegacyServeLoop(t *testing.T) {
	type preTraceRequest struct {
		Seq    uint64
		Method string
		Body   []byte
		Ver    uint8
		Tenant string
	}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	go func() {
		defer sConn.Close()
		for {
			var req preTraceRequest
			if _, err := readFrame(sConn, &req); err != nil {
				return
			}
			if _, err := writeFrame(sConn, &response{Seq: req.Seq, Body: req.Body}); err != nil {
				return
			}
		}
	}()
	cli := NewClient(cConn)
	cConn.SetDeadline(time.Now().Add(5 * time.Second))
	var echoed string
	if _, err := cli.CallTraced("echo", "legacy", &echoed, TraceContext{Trace: 1, Span: 1}); err != nil {
		t.Fatalf("traced call against legacy server: %v", err)
	}
	if echoed != "legacy" {
		t.Fatalf("echoed = %q", echoed)
	}
}
