package store

import (
	"database/sql"
	"fmt"
	"io"
	"math"

	"encshare/internal/minisql"
)

// v1store is the original minisql-backed engine, kept as the build-time
// oracle (`-engine v1`) for parity tests and the ablation benchmark. It
// talks to the embedded SQL engine through database/sql exactly as the
// paper's prototype talks to MySQL, with B-tree indexes on pre (primary
// key), post and parent, plus pre-parsed direct statements on the hot
// read path.
type v1store struct {
	db  *sql.DB
	dsn string

	insert      *sql.Stmt
	rangeIncl   *sql.Stmt
	rootQuery   *sql.Stmt
	countQuery  *sql.Stmt
	minMaxQuery *sql.Stmt
	naiveDesc   *sql.Stmt
	childrenCnt *sql.Stmt

	// Hot read path: the navigation and share-fetch queries the filter
	// issues per engine step run directly against the embedded minisql
	// engine through pre-parsed statements — same engine and locking as
	// the database/sql path, minus the driver boxing per cell. The
	// metadata twins additionally skip the poly column, so a structural
	// fetch does not drag every row's share blob through the scan just
	// to discard it.
	mdb           *minisql.DB
	qByPre        *minisql.Prepared
	qByPreMeta    *minisql.Prepared
	qChildren     *minisql.Prepared
	qChildrenMeta *minisql.Prepared
	qBoundary     *minisql.Prepared
	qRangeScan    *minisql.Prepared
	qRangeMeta    *minisql.Prepared

	// Mutation primitives (the WAL apply path). UPDATE is in-place in
	// minisql — the physical row slot never moves — which is what keeps
	// replicas that apply identical op sequences byte-identical on Dump.
	qUpdate *minisql.Prepared
	qDelete *minisql.Prepared
}

func openV1(dsn string) (*v1store, error) {
	db, err := sql.Open(minisql.DriverName, dsn)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	return &v1store{db: db, dsn: dsn}, nil
}

// v1Schema is the nodes schema of §5.1, shared by Init and the
// cross-format load path.
var v1Schema = []string{
	`CREATE TABLE nodes (
		pre BIGINT PRIMARY KEY,
		post BIGINT NOT NULL,
		parent BIGINT NOT NULL,
		poly BLOB NOT NULL
	)`,
	"CREATE INDEX idx_nodes_post ON nodes (post) USING BTREE",
	"CREATE INDEX idx_nodes_parent ON nodes (parent) USING BTREE",
}

func (s *v1store) Init() error {
	for _, q := range v1Schema {
		if _, err := s.db.Exec(q); err != nil {
			return fmt.Errorf("store: init: %w", err)
		}
	}
	return s.prepare()
}

func (s *v1store) Attach() error { return s.prepare() }

func (s *v1store) prepare() error {
	prep := func(dst **sql.Stmt, q string) error {
		st, err := s.db.Prepare(q)
		if err != nil {
			return fmt.Errorf("store: prepare %q: %w", q, err)
		}
		*dst = st
		return nil
	}
	for _, p := range []struct {
		dst **sql.Stmt
		q   string
	}{
		{&s.insert, "INSERT INTO nodes (pre, post, parent, poly) VALUES (?, ?, ?, ?)"},
		{&s.rangeIncl, "SELECT pre, post, parent, poly FROM nodes WHERE pre >= ? AND pre <= ? ORDER BY pre"},
		{&s.rootQuery, "SELECT pre, post, parent, poly FROM nodes WHERE parent = 0"},
		{&s.countQuery, "SELECT COUNT(*) FROM nodes"},
		{&s.minMaxQuery, "SELECT MIN(pre), MAX(pre) FROM nodes"},
		{&s.naiveDesc, "SELECT pre, post, parent, poly FROM nodes WHERE pre > ? AND post < ? ORDER BY pre"},
		{&s.childrenCnt, "SELECT COUNT(*) FROM nodes WHERE parent = ?"},
	} {
		if err := prep(p.dst, p.q); err != nil {
			return err
		}
	}
	s.mdb = minisql.Get(s.dsn)
	direct := func(dst **minisql.Prepared, q string) error {
		st, err := s.mdb.Prepare(q)
		if err != nil {
			return fmt.Errorf("store: prepare %q: %w", q, err)
		}
		*dst = st
		return nil
	}
	for _, p := range []struct {
		dst **minisql.Prepared
		q   string
	}{
		{&s.qByPre, "SELECT pre, post, parent, poly FROM nodes WHERE pre = ?"},
		{&s.qByPreMeta, "SELECT pre, post, parent FROM nodes WHERE pre = ?"},
		{&s.qChildren, "SELECT pre, post, parent, poly FROM nodes WHERE parent = ? ORDER BY pre"},
		{&s.qChildrenMeta, "SELECT pre, post, parent FROM nodes WHERE parent = ? ORDER BY pre"},
		{&s.qBoundary, "SELECT MIN(pre) FROM nodes WHERE pre > ? AND post > ?"},
		{&s.qRangeScan, "SELECT pre, post, parent, poly FROM nodes WHERE pre > ? AND pre < ? ORDER BY pre"},
		{&s.qRangeMeta, "SELECT pre, post, parent FROM nodes WHERE pre > ? AND pre < ? ORDER BY pre"},
		{&s.qUpdate, "UPDATE nodes SET pre = ?, post = ?, parent = ?, poly = ? WHERE pre = ?"},
		{&s.qDelete, "DELETE FROM nodes WHERE pre = ?"},
	} {
		if err := direct(p.dst, p.q); err != nil {
			return err
		}
	}
	return nil
}

// rowsFromValues converts direct-engine result rows (pre, post, parent
// [, poly]) into NodeRows. Blob cells alias the stored row — NodeRow
// consumers treat share blobs as read-only, which every caller in this
// repo does (shares are immutable once encoded).
func rowsFromValues(rows [][]minisql.Value, withPoly bool) ([]NodeRow, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	out := make([]NodeRow, len(rows))
	for i, row := range rows {
		r := NodeRow{Pre: row[0].(int64), Post: row[1].(int64), Parent: row[2].(int64)}
		if withPoly {
			b, ok := row[3].([]byte)
			if !ok {
				return nil, fmt.Errorf("store: poly column holds %T", row[3])
			}
			r.Poly = b
		}
		out[i] = r
	}
	return out, nil
}

func (s *v1store) InsertNode(row NodeRow) error {
	if _, err := s.insert.Exec(row.Pre, row.Post, row.Parent, row.Poly); err != nil {
		return fmt.Errorf("store: insert pre=%d: %w", row.Pre, err)
	}
	return nil
}

func (s *v1store) UpdateNode(oldPre int64, row NodeRow) error {
	n, err := s.qUpdate.Exec(row.Pre, row.Post, row.Parent, row.Poly, oldPre)
	if err != nil {
		return fmt.Errorf("store: update pre=%d: %w", oldPre, err)
	}
	if n == 0 {
		return NotFoundError(oldPre)
	}
	return nil
}

func (s *v1store) DeleteNode(pre int64) error {
	n, err := s.qDelete.Exec(pre)
	if err != nil {
		return fmt.Errorf("store: delete pre=%d: %w", pre, err)
	}
	if n == 0 {
		return NotFoundError(pre)
	}
	return nil
}

func scanRows(rows *sql.Rows) ([]NodeRow, error) {
	defer rows.Close()
	var out []NodeRow
	for rows.Next() {
		var r NodeRow
		if err := rows.Scan(&r.Pre, &r.Post, &r.Parent, &r.Poly); err != nil {
			return nil, fmt.Errorf("store: scan: %w", err)
		}
		out = append(out, r)
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("store: rows: %w", err)
	}
	return out, nil
}

func (s *v1store) Root() (NodeRow, error) {
	rows, err := s.rootQuery.Query()
	if err != nil {
		return NodeRow{}, fmt.Errorf("store: root: %w", err)
	}
	all, err := scanRows(rows)
	if err != nil {
		return NodeRow{}, err
	}
	switch len(all) {
	case 0:
		return NodeRow{}, fmt.Errorf("store: root: %w", ErrNotFound)
	case 1:
		return all[0], nil
	}
	return NodeRow{}, fmt.Errorf("store: %d root nodes", len(all))
}

func (s *v1store) Node(pre int64) (NodeRow, error) {
	return s.nodeWith(s.qByPre, pre, true)
}

func (s *v1store) NodeMeta(pre int64) (NodeRow, error) {
	return s.nodeWith(s.qByPreMeta, pre, false)
}

func (s *v1store) nodeWith(q *minisql.Prepared, pre int64, withPoly bool) (NodeRow, error) {
	_, rows, err := q.Query(pre)
	if err != nil {
		return NodeRow{}, fmt.Errorf("store: node %d: %w", pre, err)
	}
	all, err := rowsFromValues(rows, withPoly)
	if err != nil {
		return NodeRow{}, err
	}
	if len(all) == 0 {
		return NodeRow{}, NotFoundError(pre)
	}
	return all[0], nil
}

func (s *v1store) Children(pre int64) ([]NodeRow, error) {
	_, rows, err := s.qChildren.Query(pre)
	if err != nil {
		return nil, fmt.Errorf("store: children of %d: %w", pre, err)
	}
	return rowsFromValues(rows, true)
}

func (s *v1store) ChildrenMeta(pre int64) ([]NodeRow, error) {
	_, rows, err := s.qChildrenMeta.Query(pre)
	if err != nil {
		return nil, fmt.Errorf("store: children of %d: %w", pre, err)
	}
	return rowsFromValues(rows, false)
}

func (s *v1store) Descendants(pre, post int64) ([]NodeRow, error) {
	return s.descendantsWith(s.qRangeScan, pre, post, true)
}

func (s *v1store) DescendantsMeta(pre, post int64) ([]NodeRow, error) {
	return s.descendantsWith(s.qRangeMeta, pre, post, false)
}

// boundary locates the subtree boundary — the smallest pre greater than
// pre whose post exceeds post, i.e. the first non-descendant — with a
// loose index scan.
func (s *v1store) boundary(pre, post int64) (int64, error) {
	_, brows, err := s.qBoundary.Query(pre, post)
	if err != nil {
		return 0, fmt.Errorf("store: boundary of %d: %w", pre, err)
	}
	hi := int64(math.MaxInt64)
	if len(brows) == 1 && len(brows[0]) == 1 && brows[0][0] != nil {
		hi = brows[0][0].(int64)
	}
	return hi, nil
}

func (s *v1store) descendantsWith(q *minisql.Prepared, pre, post int64, withPoly bool) ([]NodeRow, error) {
	hi, err := s.boundary(pre, post)
	if err != nil {
		return nil, err
	}
	_, rows, err := q.Query(pre, hi)
	if err != nil {
		return nil, fmt.Errorf("store: descendants of %d: %w", pre, err)
	}
	return rowsFromValues(rows, withPoly)
}

func (s *v1store) VisitDescendantsMeta(pre, post int64, fn func(pre, post, parent int64)) error {
	hi, err := s.boundary(pre, post)
	if err != nil {
		return err
	}
	_, rows, err := s.qRangeMeta.Query(pre, hi)
	if err != nil {
		return fmt.Errorf("store: descendants of %d: %w", pre, err)
	}
	for _, row := range rows {
		fn(row[0].(int64), row[1].(int64), row[2].(int64))
	}
	return nil
}

func (s *v1store) DescendantsNaive(pre, post int64) ([]NodeRow, error) {
	rows, err := s.naiveDesc.Query(pre, post)
	if err != nil {
		return nil, fmt.Errorf("store: naive descendants of %d: %w", pre, err)
	}
	return scanRows(rows)
}

func (s *v1store) Range(lo, hi int64) ([]NodeRow, error) {
	rows, err := s.rangeIncl.Query(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("store: range [%d, %d]: %w", lo, hi, err)
	}
	return scanRows(rows)
}

func (s *v1store) MinMaxPre() (lo, hi int64, err error) {
	var nlo, nhi sql.NullInt64
	if err := s.minMaxQuery.QueryRow().Scan(&nlo, &nhi); err != nil {
		return 0, 0, fmt.Errorf("store: min/max pre: %w", err)
	}
	if !nlo.Valid || !nhi.Valid {
		return 0, 0, fmt.Errorf("store: min/max pre of empty table: %w", ErrNotFound)
	}
	return nlo.Int64, nhi.Int64, nil
}

func (s *v1store) Count() (int64, error) {
	var n int64
	if err := s.countQuery.QueryRow().Scan(&n); err != nil {
		return 0, fmt.Errorf("store: count: %w", err)
	}
	return n, nil
}

func (s *v1store) ChildCount(pre int64) (int64, error) {
	var n int64
	if err := s.childrenCnt.QueryRow(pre).Scan(&n); err != nil {
		return 0, fmt.Errorf("store: child count of %d: %w", pre, err)
	}
	return n, nil
}

func (s *v1store) Dump(w io.Writer) error {
	return minisql.Get(s.dsn).Dump(w)
}

// loadNative restores a minisql gob dump and re-prepares statements.
func (s *v1store) loadNative(r io.Reader) error {
	if err := minisql.Get(s.dsn).Load(r); err != nil {
		return err
	}
	return s.prepare()
}

// loadRows replaces the table with rows (sorted by pre) — the path a v1
// oracle takes when attaching a v2-format file. The deterministic
// insert order keeps replica dumps byte-identical.
func (s *v1store) loadRows(rows []NodeRow) error {
	s.db.Exec("DROP TABLE nodes") // ignore "no such table"
	for _, q := range v1Schema {
		if _, err := s.db.Exec(q); err != nil {
			return fmt.Errorf("store: load: %w", err)
		}
	}
	if err := s.prepare(); err != nil {
		return err
	}
	for _, row := range rows {
		if err := s.InsertNode(row); err != nil {
			return fmt.Errorf("store: load: %w", err)
		}
	}
	return nil
}

func (s *v1store) Close() error { return s.db.Close() }

func (s *v1store) PoolStats() (PoolStats, bool) { return PoolStats{}, false }
