package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"encshare/internal/minisql"
)

// ---- row codec ----

func TestRowCodecRoundTrip(t *testing.T) {
	for _, row := range []NodeRow{
		{Pre: 1, Post: 1, Parent: 0, Poly: []byte{}},
		{Pre: 42, Post: 7, Parent: 3, Poly: []byte{1, 2, 3}},
		{Pre: -1, Post: -9, Parent: 1 << 40, Poly: bytes.Repeat([]byte{0xAB}, 500)},
	} {
		b := encodeRow(nil, row)
		if len(b) != rowSize(row) {
			t.Fatalf("encoded %d bytes, rowSize says %d", len(b), rowSize(row))
		}
		got, err := decodeRow(b)
		if err != nil {
			t.Fatal(err)
		}
		if got.Pre != row.Pre || got.Post != row.Post || got.Parent != row.Parent || !bytes.Equal(got.Poly, row.Poly) {
			t.Fatalf("round trip: %+v != %+v", got, row)
		}
		pre, post, parent := decodeRowMeta(b)
		if pre != row.Pre || post != row.Post || parent != row.Parent {
			t.Fatalf("meta decode (%d, %d, %d) != %+v", pre, post, parent, row)
		}
	}
}

// ---- slotted page ----

func TestSlottedPage(t *testing.T) {
	p := make([]byte, pageSize)
	pageInit(p)
	if pageNSlots(p) != 0 || pageLive(p) != 0 {
		t.Fatal("fresh page not empty")
	}

	mkRow := func(pre int64, n int) []byte {
		return encodeRow(nil, NodeRow{Pre: pre, Post: pre, Parent: 0, Poly: bytes.Repeat([]byte{byte(pre)}, n)})
	}
	var slots []int
	for i := 0; i < 10; i++ {
		slot, ok := pageInsert(p, mkRow(int64(i), 20))
		if !ok {
			t.Fatalf("insert %d failed", i)
		}
		if slot != i {
			t.Fatalf("slot = %d, want %d (append-only slot directory)", slot, i)
		}
		slots = append(slots, slot)
	}
	if pageLive(p) != 10 {
		t.Fatalf("live = %d", pageLive(p))
	}
	for i, slot := range slots {
		row, err := decodeRow(pageSlot(p, slot))
		if err != nil {
			t.Fatal(err)
		}
		if row.Pre != int64(i) {
			t.Fatalf("slot %d holds pre %d", slot, row.Pre)
		}
	}

	// Same-size update is in place; slot unchanged.
	if !pageUpdate(p, 3, mkRow(103, 20)) {
		t.Fatal("same-size update rejected")
	}
	if row, _ := decodeRow(pageSlot(p, 3)); row.Pre != 103 {
		t.Fatalf("updated slot holds pre %d", row.Pre)
	}
	// A larger row does not fit the allocated slot.
	if pageUpdate(p, 3, mkRow(103, 4000)) {
		t.Fatal("oversized update accepted in place")
	}

	if !pageDelete(p, 5) {
		t.Fatal("delete failed")
	}
	if pageSlot(p, 5) != nil {
		t.Fatal("deleted slot still readable")
	}
	if pageDelete(p, 5) {
		t.Fatal("double delete succeeded")
	}
	if pageLive(p) != 9 {
		t.Fatalf("live after delete = %d", pageLive(p))
	}

	// Fill until full; free space accounting must refuse, not corrupt.
	n := 0
	for {
		if _, ok := pageInsert(p, mkRow(int64(1000+n), 40)); !ok {
			break
		}
		n++
	}
	if pageFree(p) >= 40+rowHeaderLen+slotLen {
		t.Fatalf("insert refused with %d bytes free", pageFree(p))
	}
}

// ---- B⁺-tree ----

// smallTree builds a bptree with tiny fan-out so a few hundred keys
// exercise leaf splits, branch splits and multi-level descents.
func smallTree(t *testing.T) *bptree {
	t.Helper()
	pg := &pager{}
	pool := newBufferPool(minPoolPages, &pager{}, pg)
	tr := newBptree(pool, pg)
	tr.leafCap = 4
	tr.branchCap = 4
	return tr
}

func TestBptreeInsertScanDelete(t *testing.T) {
	tr := smallTree(t)
	const n = 500
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		if tr.set(treeKey{a: int64(k)}, rid{page: uint32(k + 1)}) {
			t.Fatalf("key %d reported as replaced on first insert", k)
		}
	}
	for k := 0; k < n; k++ {
		r, ok := tr.get(treeKey{a: int64(k)})
		if !ok || r.page != uint32(k+1) {
			t.Fatalf("get(%d) = %+v, %v", k, r, ok)
		}
	}
	// Full scan is ordered and complete.
	var got []int64
	tr.scanFrom(treeKey{a: minInt64, b: minInt64}, func(k treeKey, _ rid) bool {
		got = append(got, k.a)
		return true
	})
	if len(got) != n {
		t.Fatalf("scan found %d keys", len(got))
	}
	for i, k := range got {
		if k != int64(i) {
			t.Fatalf("scan[%d] = %d", i, k)
		}
	}
	lo, _, ok := tr.min()
	if !ok || lo.a != 0 {
		t.Fatalf("min = %+v, %v", lo, ok)
	}
	hi, _, ok := tr.max()
	if !ok || hi.a != n-1 {
		t.Fatalf("max = %+v, %v", hi, ok)
	}

	// Replace reports the overwrite.
	if !tr.set(treeKey{a: 7}, rid{page: 999}) {
		t.Fatal("replace not reported")
	}
	if r, _ := tr.get(treeKey{a: 7}); r.page != 999 {
		t.Fatalf("replace lost: %+v", r)
	}

	// Delete every third key; the rest must survive.
	for k := 0; k < n; k += 3 {
		if !tr.delete(treeKey{a: int64(k)}) {
			t.Fatalf("delete(%d) missed", k)
		}
	}
	for k := 0; k < n; k++ {
		_, ok := tr.get(treeKey{a: int64(k)})
		if want := k%3 != 0; ok != want {
			t.Fatalf("after deletes, get(%d) = %v", k, ok)
		}
	}
	// max() still answers after lazy deletes empty the rightmost leaf.
	if n%3 == 1 {
		t.Skip("adjust n so the max key survives")
	}
	hi, _, ok = tr.max()
	if !ok {
		t.Fatal("max after deletes missing")
	}
	if hi.a%3 == 0 {
		t.Fatalf("max = deleted key %d", hi.a)
	}
}

func TestBptreeCompositeKeys(t *testing.T) {
	tr := smallTree(t)
	// (parent, pre) composite ordering: all children of one parent are
	// contiguous and pre-ordered under a scan.
	for _, k := range rand.New(rand.NewSource(2)).Perm(100) {
		tr.set(treeKey{a: int64(k % 10), b: int64(k)}, rid{page: uint32(k + 1)})
	}
	var kids []int64
	tr.scanFrom(treeKey{a: 4, b: minInt64}, func(k treeKey, _ rid) bool {
		if k.a != 4 {
			return false
		}
		kids = append(kids, k.b)
		return true
	})
	if len(kids) != 10 {
		t.Fatalf("found %d entries for parent 4", len(kids))
	}
	for i := 1; i < len(kids); i++ {
		if kids[i] <= kids[i-1] {
			t.Fatalf("children out of order: %v", kids)
		}
	}
}

// ---- buffer pool ----

func TestBufferPoolEviction(t *testing.T) {
	heap := &pager{}
	pool := newBufferPool(minPoolPages, heap, &pager{})
	// Twice the pool capacity in pages, each stamped with its ID.
	nPages := 2 * minPoolPages
	for i := 0; i < nPages; i++ {
		id := heap.alloc()
		fi, b := pool.fetch(spaceHeap, id)
		pageInit(b)
		b[pageHdrLen] = byte(id) // scribble past the header
		pool.unpin(fi, true)
	}
	// Re-read everything; evicted dirty pages must have been written back.
	for pass := 0; pass < 2; pass++ {
		for id := uint32(1); id <= uint32(nPages); id++ {
			fi, b := pool.fetch(spaceHeap, id)
			if b[pageHdrLen] != byte(id) {
				t.Fatalf("page %d lost its write (got %d)", id, b[pageHdrLen])
			}
			pool.unpin(fi, false)
		}
	}
	// A repeated touch of a resident page is a hit.
	fi, _ := pool.fetch(spaceHeap, uint32(nPages))
	pool.unpin(fi, false)
	st := pool.stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite working set > capacity")
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Resident > st.Pages {
		t.Fatalf("resident %d exceeds capacity %d", st.Resident, st.Pages)
	}
}

func TestBufferPoolGrowsWhenAllPinned(t *testing.T) {
	heap := &pager{}
	pool := newBufferPool(minPoolPages, heap, &pager{})
	var pins []int
	for i := 0; i < minPoolPages+4; i++ {
		id := heap.alloc()
		fi, _ := pool.fetch(spaceHeap, id)
		pins = append(pins, fi) // hold every pin: pool must grow, not deadlock
	}
	for _, fi := range pins {
		pool.unpin(fi, false)
	}
}

// ---- engine-level v2 behavior ----

// randomOps drives the same pseudo-random op sequence into any store.
func randomOps(t *testing.T, s *Store, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	present := map[int64]bool{}
	var order []int64
	poly := func(pre int64) []byte {
		b := make([]byte, 40+rng.Intn(100))
		for i := range b {
			b[i] = byte(pre + int64(i))
		}
		return b
	}
	for i := 0; i < n; i++ {
		switch op := rng.Intn(10); {
		case op < 6 || len(order) == 0: // insert
			pre := int64(len(present)*2 + 1 + rng.Intn(2))
			for present[pre] {
				pre++
			}
			row := NodeRow{Pre: pre, Post: pre + int64(rng.Intn(5)), Parent: pre / 2, Poly: poly(pre)}
			if err := s.InsertNode(row); err != nil {
				t.Fatal(err)
			}
			present[pre] = true
			order = append(order, pre)
		case op < 8: // update in place
			pre := order[rng.Intn(len(order))]
			if !present[pre] {
				continue
			}
			row := NodeRow{Pre: pre, Post: pre + int64(rng.Intn(7)), Parent: pre / 2, Poly: poly(pre + 1)}
			if err := s.UpdateNode(pre, row); err != nil {
				t.Fatal(err)
			}
		default: // delete
			pre := order[rng.Intn(len(order))]
			if !present[pre] {
				continue
			}
			if err := s.DeleteNode(pre); err != nil {
				t.Fatal(err)
			}
			delete(present, pre)
		}
	}
}

// TestV2DumpReplicaDeterminism: two v2 tables that apply the identical op
// sequence dump byte-identical images, and dump→load→dump is the byte
// identity. This is the property the replicated mutation pipeline pins
// its digest-verified acks on.
func TestV2DumpReplicaDeterminism(t *testing.T) {
	var dumps [][]byte
	for r := 0; r < 2; r++ {
		s := newStoreEngine(t, EngineV2)
		randomOps(t, s, 7, 3000)
		var buf bytes.Buffer
		if err := s.Dump(&buf); err != nil {
			t.Fatal(err)
		}
		dumps = append(dumps, buf.Bytes())
	}
	if !bytes.Equal(dumps[0], dumps[1]) {
		t.Fatal("replicas applying identical ops dumped different bytes")
	}

	// dump → load → dump identity.
	dsn := minisql.FreshDSN()
	s2, err := OpenWith(dsn, Options{Engine: EngineV2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s2.Close()
		minisql.Drop(dsn)
	})
	if err := s2.Load(bytes.NewReader(dumps[0])); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := s2.Dump(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), dumps[0]) {
		t.Fatal("dump→load→dump is not the identity")
	}
}

// TestV2MatchesV1UnderRandomOps: the paged engine and the minisql oracle,
// driven by one op sequence, must agree on every read API.
func TestV2MatchesV1UnderRandomOps(t *testing.T) {
	v1 := newStoreEngine(t, EngineV1)
	v2 := newStoreEngine(t, EngineV2)
	randomOps(t, v1, 11, 4000)
	randomOps(t, v2, 11, 4000)

	n1, err := v1.Count()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := v2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Fatalf("count %d != %d", n2, n1)
	}
	lo, hi, err := v1.MinMaxPre()
	if err != nil {
		t.Fatal(err)
	}
	if lo2, hi2, err := v2.MinMaxPre(); err != nil || lo2 != lo || hi2 != hi {
		t.Fatalf("minmax (%d, %d, %v) != (%d, %d)", lo2, hi2, err, lo, hi)
	}

	rows1, err := v1.Range(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := v2.Range(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows1) != len(rows2) {
		t.Fatalf("range %d != %d rows", len(rows2), len(rows1))
	}
	for i := range rows1 {
		a, b := rows1[i], rows2[i]
		if a.Pre != b.Pre || a.Post != b.Post || a.Parent != b.Parent || !bytes.Equal(a.Poly, b.Poly) {
			t.Fatalf("range[%d]: %+v != %+v", i, b, a)
		}
	}

	// Spot checks across the read surface.
	for _, r := range rows1 {
		a, err := v1.Node(r.Pre)
		if err != nil {
			t.Fatal(err)
		}
		b, err := v2.Node(r.Pre)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Poly, b.Poly) {
			t.Fatalf("node %d polys differ", r.Pre)
		}
		c1, err := v1.ChildCount(r.Pre)
		if err != nil {
			t.Fatal(err)
		}
		c2, err := v2.ChildCount(r.Pre)
		if err != nil {
			t.Fatal(err)
		}
		if c1 != c2 {
			t.Fatalf("childcount(%d) %d != %d", r.Pre, c2, c1)
		}
		d1, err := v1.Descendants(r.Pre, r.Post)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := v2.Descendants(r.Pre, r.Post)
		if err != nil {
			t.Fatal(err)
		}
		if len(d1) != len(d2) {
			t.Fatalf("descendants(%d) %d != %d", r.Pre, len(d2), len(d1))
		}
		for i := range d1 {
			if d1[i].Pre != d2[i].Pre || !bytes.Equal(d1[i].Poly, d2[i].Poly) {
				t.Fatalf("descendants(%d)[%d] differ", r.Pre, i)
			}
		}
	}
}

// TestV2HeapSplits: enough large rows to overflow many heap pages; every
// row must remain reachable through the tree afterwards.
func TestV2HeapSplits(t *testing.T) {
	s := newStoreEngine(t, EngineV2)
	const n = 2000
	poly := bytes.Repeat([]byte{7}, 200) // ~35 rows per 8 KiB page
	// Post-order-ish arrival (the encoder emits on EndElement): insert
	// even pres ascending then odd descending, forcing mid-page placement.
	var pres []int64
	for p := int64(2); p <= n; p += 2 {
		pres = append(pres, p)
	}
	for p := int64(n - 1); p >= 1; p -= 2 {
		pres = append(pres, p)
	}
	for _, pre := range pres {
		if err := s.InsertNode(NodeRow{Pre: pre, Post: pre, Parent: pre / 2, Poly: poly}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := s.Range(1, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("%d rows after splits, want %d", len(rows), n)
	}
	for i, r := range rows {
		if r.Pre != int64(i+1) {
			t.Fatalf("row %d has pre %d", i, r.Pre)
		}
		if !bytes.Equal(r.Poly, poly) {
			t.Fatalf("row %d poly corrupted", i)
		}
	}
	if st, ok := s.PoolStats(); !ok || st.Resident < 2 {
		t.Fatalf("pool stats = %+v, %v", st, ok)
	}
}

// TestV2SmallPoolScans: a pool far smaller than the table still answers
// every query correctly (pages stream through the clock).
func TestV2SmallPoolScans(t *testing.T) {
	dsn := minisql.FreshDSN()
	s, err := OpenWith(dsn, Options{Engine: EngineV2, PoolPages: minPoolPages})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		minisql.Drop(dsn)
	})
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	const n = 4000
	poly := bytes.Repeat([]byte{9}, 150)
	for pre := int64(1); pre <= n; pre++ {
		if err := s.InsertNode(NodeRow{Pre: pre, Post: n - pre + 1, Parent: pre / 2, Poly: poly}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := s.Range(1, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n {
		t.Fatalf("range = %d rows", len(rows))
	}
	st, ok := s.PoolStats()
	if !ok {
		t.Fatal("no pool stats from v2")
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions with %d-page pool over %d rows: %+v", minPoolPages, n, st)
	}
	if st.Resident > st.Pages {
		t.Fatalf("resident %d > capacity %d", st.Resident, st.Pages)
	}
}

// TestV2CrossFormatLoadErrors: junk streams are rejected by both engines.
func TestV2CrossFormatLoadErrors(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		s := newStoreEngine(t, eng)
		junk := []byte("this is neither a gob nor a page file")
		if err := s.Load(bytes.NewReader(junk)); err == nil {
			t.Fatal("junk stream loaded")
		}
	})
}

func TestParseEngine(t *testing.T) {
	for in, want := range map[string]Engine{"": EngineV2, "v2": EngineV2, "v1": EngineV1} {
		got, err := ParseEngine(in)
		if err != nil || got != want {
			t.Fatalf("ParseEngine(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseEngine("v3"); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestV2UpdateKeepsDumpAligned: in-place updates must not move slots —
// two replicas, one loaded from the other's dump, stay byte-identical
// through subsequent identical updates.
func TestV2UpdateKeepsDumpAligned(t *testing.T) {
	a := newStoreEngine(t, EngineV2)
	for pre := int64(1); pre <= 300; pre++ {
		if err := a.InsertNode(NodeRow{Pre: pre, Post: pre, Parent: pre / 2, Poly: bytes.Repeat([]byte{1}, 64)}); err != nil {
			t.Fatal(err)
		}
	}
	var img bytes.Buffer
	if err := a.Dump(&img); err != nil {
		t.Fatal(err)
	}
	dsn := minisql.FreshDSN()
	b, err := OpenWith(dsn, Options{Engine: EngineV2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		b.Close()
		minisql.Drop(dsn)
	})
	if err := b.Load(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatal(err)
	}
	for pre := int64(10); pre <= 250; pre += 10 {
		row := NodeRow{Pre: pre, Post: pre + 1, Parent: pre / 2, Poly: bytes.Repeat([]byte{byte(pre)}, 64)}
		if err := a.UpdateNode(pre, row); err != nil {
			t.Fatal(err)
		}
		if err := b.UpdateNode(pre, row); err != nil {
			t.Fatal(err)
		}
	}
	var da, db bytes.Buffer
	if err := a.Dump(&da); err != nil {
		t.Fatal(err)
	}
	if err := b.Dump(&db); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da.Bytes(), db.Bytes()) {
		t.Fatal("updates desynced replica dumps")
	}
}

func BenchmarkV2PointLookup(b *testing.B) {
	for _, eng := range engines {
		b.Run(string(eng), func(b *testing.B) {
			s := newStoreEngine(b, eng)
			for pre := int64(1); pre <= 1000; pre++ {
				if err := s.InsertNode(NodeRow{Pre: pre, Post: pre, Parent: pre / 2, Poly: bytes.Repeat([]byte{1}, 64)}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Node(int64(i%1000 + 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkV2MetaScan(b *testing.B) {
	s := newStoreEngine(b, EngineV2)
	const n = 5000
	for pre := int64(1); pre <= n; pre++ {
		post := pre
		if pre == 1 {
			post = n
		}
		if err := s.InsertNode(NodeRow{Pre: pre, Post: post, Parent: 1, Poly: bytes.Repeat([]byte{1}, 64)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var cnt int
		if err := s.VisitDescendantsMeta(1, n, func(_, _, _ int64) { cnt++ }); err != nil {
			b.Fatal(err)
		}
		if cnt != n-1 {
			b.Fatal(fmt.Sprintf("visited %d", cnt))
		}
	}
}
