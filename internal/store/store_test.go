package store

import (
	"bytes"
	"testing"

	"encshare/internal/minisql"
	"encshare/internal/xmldoc"
)

// engines lists the storage engines every API test runs against: v2 (the
// paged default) and v1 (the minisql oracle).
var engines = []Engine{EngineV2, EngineV1}

// forEachEngine runs fn as a subtest per storage engine.
func forEachEngine(t *testing.T, fn func(t *testing.T, eng Engine)) {
	for _, eng := range engines {
		t.Run(string(eng), func(t *testing.T) { fn(t, eng) })
	}
}

// fill inserts rows matching a parsed document with dummy polynomials.
func fill(t testing.TB, s *Store, d *xmldoc.Doc) {
	t.Helper()
	d.Walk(func(n *xmldoc.Node) bool {
		parent := int64(0)
		if n.Parent != nil {
			parent = n.Parent.Pre
		}
		err := s.InsertNode(NodeRow{Pre: n.Pre, Post: n.Post, Parent: parent, Poly: []byte{byte(n.Pre)}})
		if err != nil {
			t.Fatal(err)
		}
		return true
	})
}

func newStoreEngine(t testing.TB, eng Engine) *Store {
	t.Helper()
	dsn := minisql.FreshDSN()
	s, err := OpenWith(dsn, Options{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Init(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		s.Close()
		minisql.Drop(dsn)
	})
	return s
}

func newStore(t testing.TB) *Store { return newStoreEngine(t, EngineV2) }

const testDoc = `<site><regions><europe><item><name/></item><item/></europe><asia/></regions><people><person><name/></person></people></site>`

func TestRootAndNode(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		s := newStoreEngine(t, eng)
		d, err := xmldoc.ParseString(testDoc)
		if err != nil {
			t.Fatal(err)
		}
		fill(t, s, d)

		root, err := s.Root()
		if err != nil {
			t.Fatal(err)
		}
		if root.Pre != 1 || root.Parent != 0 {
			t.Fatalf("root = %+v", root)
		}
		n, err := s.Node(3)
		if err != nil {
			t.Fatal(err)
		}
		if n.Pre != 3 || !bytes.Equal(n.Poly, []byte{3}) {
			t.Fatalf("node 3 = %+v", n)
		}
		if _, err := s.Node(999); err == nil {
			t.Fatal("missing node found")
		}
	})
}

func TestRootMissing(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		s := newStoreEngine(t, eng)
		if _, err := s.Root(); err == nil {
			t.Fatal("root on empty store succeeded")
		}
	})
}

func TestChildrenMatchTree(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		s := newStoreEngine(t, eng)
		d, _ := xmldoc.ParseString(testDoc)
		fill(t, s, d)
		d.Walk(func(n *xmldoc.Node) bool {
			rows, err := s.Children(n.Pre)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != len(n.Children) {
				t.Fatalf("children(%s) = %d rows, want %d", n.Path(), len(rows), len(n.Children))
			}
			for i, c := range n.Children {
				if rows[i].Pre != c.Pre {
					t.Fatalf("children(%s)[%d].Pre = %d, want %d (document order)",
						n.Path(), i, rows[i].Pre, c.Pre)
				}
			}
			return true
		})
		// ChildCount agrees.
		cnt, err := s.ChildCount(1)
		if err != nil {
			t.Fatal(err)
		}
		if cnt != int64(len(d.Root.Children)) {
			t.Fatalf("ChildCount(root) = %d", cnt)
		}
	})
}

func TestDescendantsMatchTree(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		s := newStoreEngine(t, eng)
		d, _ := xmldoc.ParseString(testDoc)
		fill(t, s, d)
		d.Walk(func(n *xmldoc.Node) bool {
			want := map[int64]bool{}
			var collect func(*xmldoc.Node)
			collect = func(m *xmldoc.Node) {
				for _, c := range m.Children {
					want[c.Pre] = true
					collect(c)
				}
			}
			collect(n)

			for _, variant := range []struct {
				name string
				fn   func(pre, post int64) ([]NodeRow, error)
			}{
				{"optimized", s.Descendants},
				{"naive", s.DescendantsNaive},
			} {
				rows, err := variant.fn(n.Pre, n.Post)
				if err != nil {
					t.Fatal(err)
				}
				if len(rows) != len(want) {
					t.Fatalf("%s descendants(%s) = %d rows, want %d",
						variant.name, n.Path(), len(rows), len(want))
				}
				prev := int64(-1)
				for _, r := range rows {
					if !want[r.Pre] {
						t.Fatalf("%s descendants(%s) includes pre %d", variant.name, n.Path(), r.Pre)
					}
					if r.Pre <= prev {
						t.Fatalf("%s descendants not in document order", variant.name)
					}
					prev = r.Pre
				}
			}

			// The streaming visitor agrees with the materialized scan.
			var visited []int64
			if err := s.VisitDescendantsMeta(n.Pre, n.Post, func(pre, _, _ int64) {
				visited = append(visited, pre)
			}); err != nil {
				t.Fatal(err)
			}
			if len(visited) != len(want) {
				t.Fatalf("visit descendants(%s) = %d rows, want %d", n.Path(), len(visited), len(want))
			}
			for _, pre := range visited {
				if !want[pre] {
					t.Fatalf("visit descendants(%s) includes pre %d", n.Path(), pre)
				}
			}
			return true
		})
	})
}

func TestCount(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		s := newStoreEngine(t, eng)
		d, _ := xmldoc.ParseString(testDoc)
		fill(t, s, d)
		n, err := s.Count()
		if err != nil {
			t.Fatal(err)
		}
		if n != d.Count {
			t.Fatalf("Count = %d, want %d", n, d.Count)
		}
	})
}

func TestDuplicatePreRejected(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		s := newStoreEngine(t, eng)
		if err := s.InsertNode(NodeRow{Pre: 1, Post: 1, Parent: 0, Poly: []byte{1}}); err != nil {
			t.Fatal(err)
		}
		if err := s.InsertNode(NodeRow{Pre: 1, Post: 2, Parent: 0, Poly: []byte{2}}); err == nil {
			t.Fatal("duplicate pre accepted")
		}
	})
}

func TestDumpLoadRoundTrip(t *testing.T) {
	// Every (dump engine, load engine) pair must round-trip: native loads
	// adopt the dump verbatim, cross-format loads convert row-by-row.
	for _, from := range engines {
		for _, to := range engines {
			t.Run(string(from)+"_to_"+string(to), func(t *testing.T) {
				s := newStoreEngine(t, from)
				d, _ := xmldoc.ParseString(testDoc)
				fill(t, s, d)
				var buf bytes.Buffer
				if err := s.Dump(&buf); err != nil {
					t.Fatal(err)
				}

				dsn2 := minisql.FreshDSN()
				s2, err := OpenWith(dsn2, Options{Engine: to})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() {
					s2.Close()
					minisql.Drop(dsn2)
				})
				if err := s2.Load(&buf); err != nil {
					t.Fatal(err)
				}
				n, err := s2.Count()
				if err != nil {
					t.Fatal(err)
				}
				if n != d.Count {
					t.Fatalf("Count after load = %d, want %d", n, d.Count)
				}
				kids, err := s2.Children(1)
				if err != nil {
					t.Fatal(err)
				}
				if len(kids) != len(d.Root.Children) {
					t.Fatalf("children after load = %d", len(kids))
				}
				// Row-level identity with the source.
				for pre := int64(1); pre <= d.Count; pre++ {
					a, err := s.Node(pre)
					if err != nil {
						t.Fatal(err)
					}
					b, err := s2.Node(pre)
					if err != nil {
						t.Fatal(err)
					}
					if a.Pre != b.Pre || a.Post != b.Post || a.Parent != b.Parent || !bytes.Equal(a.Poly, b.Poly) {
						t.Fatalf("node %d: %+v != %+v", pre, a, b)
					}
				}
			})
		}
	}
}

func TestInitTwiceFails(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		s := newStoreEngine(t, eng)
		if err := s.Init(); err == nil {
			t.Fatal("double Init succeeded")
		}
	})
}
