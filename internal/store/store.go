// Package store implements the server-side node table of the scheme: one
// row (pre, post, parent, poly) per XML node, where poly is the server's
// share of the node polynomial (paper §5.1).
//
// Two engines sit behind the Store handle. The default, v2, is a
// purpose-built storage engine: a fixed-width binary row codec, slotted
// 8 KiB heap pages holding rows clustered in pre order, a B⁺-tree keyed
// on pre (plus a composite (parent, pre) tree for child navigation) and
// a CLOCK-evicting buffer pool. The v1 engine is the original
// minisql-backed implementation, kept as a correctness oracle — it talks
// to the embedded SQL engine through database/sql exactly as the paper's
// prototype talks to MySQL.
//
// The descendant query exploits the contiguity of descendants in pre
// order: the subtree boundary — the smallest pre greater than pre(n)
// whose post exceeds post(n), i.e. the first non-descendant — bounds a
// range scan of (pre(n), boundary). v1 locates it with a loose index
// scan; v2 folds it into the scan itself as a stop condition (the first
// row met with post > post(n) IS the boundary). Cost is
// O(log N + |subtree|) either way, instead of the naive O(N) post-filter
// (kept as DescendantsNaive for the ablation benchmark).
package store

import (
	"bufio"
	"errors"
	"fmt"
	"io"

	"encshare/internal/minisql"
)

// NodeRow is one stored node: the Grust numbering plus the server share of
// the node polynomial.
type NodeRow struct {
	Pre    int64
	Post   int64
	Parent int64
	Poly   []byte
}

// ErrNotFound is returned when a requested node does not exist.
var ErrNotFound = errors.New("store: node not found")

// NotFoundError is the error Node(pre) returns for a missing row —
// exported so layers that synthesize per-member errors (the cluster
// merge) produce the exact message a single server would.
func NotFoundError(pre int64) error {
	return fmt.Errorf("store: node %d: %w", pre, ErrNotFound)
}

// Engine selects the storage engine behind a Store.
type Engine string

const (
	// EngineV2 is the paged engine (slotted heap pages + B⁺-trees +
	// buffer pool) — the default.
	EngineV2 Engine = "v2"
	// EngineV1 is the original minisql-backed engine, kept as the
	// correctness oracle and ablation baseline.
	EngineV1 Engine = "v1"
)

// ParseEngine maps a CLI/config string ("", "v1", "v2") to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case "", EngineV2:
		return EngineV2, nil
	case EngineV1:
		return EngineV1, nil
	}
	return "", fmt.Errorf("store: unknown engine %q (want v1 or v2)", s)
}

// Options configures OpenWith.
type Options struct {
	// Engine selects the storage engine; empty means EngineV2.
	Engine Engine
	// PoolPages bounds the v2 buffer pool (0 = DefaultPoolPages).
	// Ignored by v1.
	PoolPages int
}

// tableEngine is what each storage engine implements. Methods mirror the
// Store API one-for-one; Load is handled in the façade because it must
// sniff the stream format before dispatching.
type tableEngine interface {
	Init() error
	Attach() error
	InsertNode(row NodeRow) error
	UpdateNode(oldPre int64, row NodeRow) error
	DeleteNode(pre int64) error
	Root() (NodeRow, error)
	Node(pre int64) (NodeRow, error)
	NodeMeta(pre int64) (NodeRow, error)
	Children(pre int64) ([]NodeRow, error)
	ChildrenMeta(pre int64) ([]NodeRow, error)
	Descendants(pre, post int64) ([]NodeRow, error)
	DescendantsMeta(pre, post int64) ([]NodeRow, error)
	VisitDescendantsMeta(pre, post int64, fn func(pre, post, parent int64)) error
	DescendantsNaive(pre, post int64) ([]NodeRow, error)
	Range(lo, hi int64) ([]NodeRow, error)
	MinMaxPre() (lo, hi int64, err error)
	Count() (int64, error)
	ChildCount(pre int64) (int64, error)
	Dump(w io.Writer) error
	loadNative(r io.Reader) error
	loadRows(rows []NodeRow) error
	Close() error
	PoolStats() (PoolStats, bool)
}

// Store is a handle on one node table.
type Store struct {
	dsn  string
	opts Options
	eng  tableEngine
}

// Open connects to (creating if necessary) the database named by dsn
// using the default engine. Call Init before first use of a fresh
// database.
func Open(dsn string) (*Store, error) {
	return OpenWith(dsn, Options{})
}

// OpenWith is Open with an explicit engine selection.
func OpenWith(dsn string, opts Options) (*Store, error) {
	var err error
	if opts.Engine, err = ParseEngine(string(opts.Engine)); err != nil {
		return nil, err
	}
	s := &Store{dsn: dsn, opts: opts}
	switch opts.Engine {
	case EngineV1:
		if s.eng, err = openV1(dsn); err != nil {
			return nil, err
		}
	default:
		s.eng = &v2store{dsn: dsn, tbl: v2get(dsn, opts.PoolPages)}
	}
	return s, nil
}

// DSN returns the database name this store is attached to.
func (s *Store) DSN() string { return s.dsn }

// Engine reports which storage engine backs this store.
func (s *Store) Engine() Engine { return s.opts.Engine }

// PoolStats returns the buffer-pool counters of a v2 store; ok is false
// for v1 (which has no pool).
func (s *Store) PoolStats() (stats PoolStats, ok bool) { return s.eng.PoolStats() }

// Init creates the nodes table (the schema of §5.1), failing if it
// already exists.
func (s *Store) Init() error { return s.eng.Init() }

// Attach binds to an existing nodes table (e.g. after Load restored a
// dump).
func (s *Store) Attach() error { return s.eng.Attach() }

// InsertNode stores one row. It satisfies the encoder's RowSink.
func (s *Store) InsertNode(row NodeRow) error { return s.eng.InsertNode(row) }

// UpdateNode rewrites the row currently stored at oldPre to row —
// numbering and share blob together, so one call renumbers a shifted
// row or patches a rebuilt one. ErrNotFound when no row sits at oldPre.
func (s *Store) UpdateNode(oldPre int64, row NodeRow) error { return s.eng.UpdateNode(oldPre, row) }

// DeleteNode removes the row at pre. ErrNotFound when absent.
func (s *Store) DeleteNode(pre int64) error { return s.eng.DeleteNode(pre) }

// Root returns the unique node with parent = 0.
func (s *Store) Root() (NodeRow, error) { return s.eng.Root() }

// Node returns the node at pre.
func (s *Store) Node(pre int64) (NodeRow, error) { return s.eng.Node(pre) }

// NodeMeta returns the node at pre without its share blob (Poly nil) —
// the cheap fetch for structural navigation.
func (s *Store) NodeMeta(pre int64) (NodeRow, error) { return s.eng.NodeMeta(pre) }

// Children returns the child rows of the node at pre, in document order.
func (s *Store) Children(pre int64) ([]NodeRow, error) { return s.eng.Children(pre) }

// ChildrenMeta is Children without the share blobs.
func (s *Store) ChildrenMeta(pre int64) ([]NodeRow, error) { return s.eng.ChildrenMeta(pre) }

// Descendants returns all proper descendants of the node (pre, post), in
// document order, using the boundary optimization.
func (s *Store) Descendants(pre, post int64) ([]NodeRow, error) { return s.eng.Descendants(pre, post) }

// DescendantsMeta is Descendants without the share blobs — what the
// engines' frontier expansion consumes.
func (s *Store) DescendantsMeta(pre, post int64) ([]NodeRow, error) {
	return s.eng.DescendantsMeta(pre, post)
}

// VisitDescendantsMeta streams the numbering of every proper descendant
// of (pre, post) in document order without materializing rows — the
// zero-allocation path behind the filter's subtree expansion.
func (s *Store) VisitDescendantsMeta(pre, post int64, fn func(pre, post, parent int64)) error {
	return s.eng.VisitDescendantsMeta(pre, post, fn)
}

// DescendantsNaive is the unoptimized variant (full pre-range scan with a
// post filter); kept for the ablation benchmark.
func (s *Store) DescendantsNaive(pre, post int64) ([]NodeRow, error) {
	return s.eng.DescendantsNaive(pre, post)
}

// Range returns the rows with pre in [lo, hi], in document order — the
// slice of the node table one cluster shard holds.
func (s *Store) Range(lo, hi int64) ([]NodeRow, error) { return s.eng.Range(lo, hi) }

// CopyRange copies the rows with pre in [lo, hi] into a fresh store
// under a new DSN — the shared shard builder behind Database.DumpShard
// (shard files) and cluster.SplitStore (in-process shards). The result
// uses the same engine as the source. The caller owns it: Close it and
// minisql.Drop the DSN when done.
func (s *Store) CopyRange(lo, hi int64) (*Store, string, error) {
	rows, err := s.Range(lo, hi)
	if err != nil {
		return nil, "", err
	}
	if len(rows) == 0 {
		return nil, "", fmt.Errorf("store: range [%d, %d] holds no rows", lo, hi)
	}
	dsn := minisql.FreshDSN()
	dst, err := OpenWith(dsn, s.opts)
	if err != nil {
		return nil, "", err
	}
	fail := func(err error) (*Store, string, error) {
		dst.Close()
		minisql.Drop(dsn)
		return nil, "", err
	}
	if err := dst.Init(); err != nil {
		return fail(err)
	}
	for _, row := range rows {
		if err := dst.InsertNode(row); err != nil {
			return fail(err)
		}
	}
	return dst, dsn, nil
}

// MinMaxPre returns the smallest and largest stored pre — the contiguous
// interval this table covers (shards report it to cluster clients at
// dial time). An empty table is ErrNotFound.
func (s *Store) MinMaxPre() (lo, hi int64, err error) { return s.eng.MinMaxPre() }

// Count returns the number of stored nodes.
func (s *Store) Count() (int64, error) { return s.eng.Count() }

// ChildCount returns the number of children of the node at pre without
// fetching the rows (used by the equality-test cost accounting).
func (s *Store) ChildCount(pre int64) (int64, error) { return s.eng.ChildCount(pre) }

// Dump serializes the table in the engine's native format: raw heap page
// images for v2 (byte-deterministic across replicas applying the same op
// sequence), the minisql gob for v1.
func (s *Store) Dump(w io.Writer) error { return s.eng.Dump(w) }

// Load restores the table from a dump in either format — the first 16
// bytes distinguish a v2 page file from a minisql gob — and leaves the
// store attached. A native-format dump loads verbatim (for v2,
// dump→load→dump is the byte identity); a foreign-format dump is
// converted row-by-row in pre order.
func (s *Store) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(v2Magic))
	isV2File := err == nil && string(head) == v2Magic
	if isV2File == (s.opts.Engine == EngineV2) {
		return s.eng.loadNative(br)
	}
	var rows []NodeRow
	if isV2File {
		rows, err = readV2Rows(br)
	} else {
		rows, err = readV1Rows(br)
	}
	if err != nil {
		return err
	}
	return s.eng.loadRows(rows)
}

// Close releases the engine handle (the data stays registered under the
// DSN until minisql.Drop).
func (s *Store) Close() error { return s.eng.Close() }
