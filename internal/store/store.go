// Package store implements the server-side node table of the scheme: one
// row (pre, post, parent, poly) per XML node, where poly is the server's
// share of the node polynomial (paper §5.1). It talks to the embedded SQL
// engine through database/sql exactly as the paper's prototype talks to
// MySQL, with B-tree indexes on pre (primary key), post and parent.
//
// The descendant query exploits the contiguity of descendants in pre
// order: it first locates the subtree boundary — the smallest pre greater
// than pre(n) whose post exceeds post(n), i.e. the first non-descendant —
// with a loose index scan, then range-scans (pre(n), boundary). Cost is
// O(log N + |subtree|) instead of the naive O(N) post-filter (kept as
// DescendantsNaive for the ablation benchmark).
package store

import (
	"database/sql"
	"errors"
	"fmt"
	"io"
	"math"

	"encshare/internal/minisql"
)

// NodeRow is one stored node: the Grust numbering plus the server share of
// the node polynomial.
type NodeRow struct {
	Pre    int64
	Post   int64
	Parent int64
	Poly   []byte
}

// ErrNotFound is returned when a requested node does not exist.
var ErrNotFound = errors.New("store: node not found")

// NotFoundError is the error Node(pre) returns for a missing row —
// exported so layers that synthesize per-member errors (the cluster
// merge) produce the exact message a single server would.
func NotFoundError(pre int64) error {
	return fmt.Errorf("store: node %d: %w", pre, ErrNotFound)
}

// Store is a handle on one node table.
type Store struct {
	db  *sql.DB
	dsn string

	insert      *sql.Stmt
	rangeIncl   *sql.Stmt
	rootQuery   *sql.Stmt
	countQuery  *sql.Stmt
	minMaxQuery *sql.Stmt
	naiveDesc   *sql.Stmt
	childrenCnt *sql.Stmt

	// Hot read path: the navigation and share-fetch queries the filter
	// issues per engine step run directly against the embedded minisql
	// engine through pre-parsed statements — same engine and locking as
	// the database/sql path, minus the driver boxing per cell. The
	// metadata twins additionally skip the poly column, so a structural
	// fetch does not drag every row's share blob through the scan just
	// to discard it.
	mdb           *minisql.DB
	qByPre        *minisql.Prepared
	qByPreMeta    *minisql.Prepared
	qChildren     *minisql.Prepared
	qChildrenMeta *minisql.Prepared
	qBoundary     *minisql.Prepared
	qRangeScan    *minisql.Prepared
	qRangeMeta    *minisql.Prepared

	// Mutation primitives (the WAL apply path). UPDATE is in-place in
	// minisql — the physical row slot never moves — which is what keeps
	// replicas that apply identical op sequences byte-identical on Dump.
	qUpdate *minisql.Prepared
	qDelete *minisql.Prepared
}

// Open connects to (creating if necessary) the minisql database named by
// dsn. Call Init before first use of a fresh database.
func Open(dsn string) (*Store, error) {
	db, err := sql.Open(minisql.DriverName, dsn)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	return &Store{db: db, dsn: dsn}, nil
}

// DSN returns the database name this store is attached to.
func (s *Store) DSN() string { return s.dsn }

// Init creates the nodes table and its indexes (the schema of §5.1),
// failing if it already exists.
func (s *Store) Init() error {
	stmts := []string{
		`CREATE TABLE nodes (
			pre BIGINT PRIMARY KEY,
			post BIGINT NOT NULL,
			parent BIGINT NOT NULL,
			poly BLOB NOT NULL
		)`,
		"CREATE INDEX idx_nodes_post ON nodes (post) USING BTREE",
		"CREATE INDEX idx_nodes_parent ON nodes (parent) USING BTREE",
	}
	for _, q := range stmts {
		if _, err := s.db.Exec(q); err != nil {
			return fmt.Errorf("store: init: %w", err)
		}
	}
	return s.prepare()
}

// Attach prepares statements against an existing nodes table (e.g. after
// minisql.Load restored a dump).
func (s *Store) Attach() error { return s.prepare() }

func (s *Store) prepare() error {
	prep := func(dst **sql.Stmt, q string) error {
		st, err := s.db.Prepare(q)
		if err != nil {
			return fmt.Errorf("store: prepare %q: %w", q, err)
		}
		*dst = st
		return nil
	}
	for _, p := range []struct {
		dst **sql.Stmt
		q   string
	}{
		{&s.insert, "INSERT INTO nodes (pre, post, parent, poly) VALUES (?, ?, ?, ?)"},
		{&s.rangeIncl, "SELECT pre, post, parent, poly FROM nodes WHERE pre >= ? AND pre <= ? ORDER BY pre"},
		{&s.rootQuery, "SELECT pre, post, parent, poly FROM nodes WHERE parent = 0"},
		{&s.countQuery, "SELECT COUNT(*) FROM nodes"},
		{&s.minMaxQuery, "SELECT MIN(pre), MAX(pre) FROM nodes"},
		{&s.naiveDesc, "SELECT pre, post, parent, poly FROM nodes WHERE pre > ? AND post < ? ORDER BY pre"},
		{&s.childrenCnt, "SELECT COUNT(*) FROM nodes WHERE parent = ?"},
	} {
		if err := prep(p.dst, p.q); err != nil {
			return err
		}
	}
	s.mdb = minisql.Get(s.dsn)
	direct := func(dst **minisql.Prepared, q string) error {
		st, err := s.mdb.Prepare(q)
		if err != nil {
			return fmt.Errorf("store: prepare %q: %w", q, err)
		}
		*dst = st
		return nil
	}
	for _, p := range []struct {
		dst **minisql.Prepared
		q   string
	}{
		{&s.qByPre, "SELECT pre, post, parent, poly FROM nodes WHERE pre = ?"},
		{&s.qByPreMeta, "SELECT pre, post, parent FROM nodes WHERE pre = ?"},
		{&s.qChildren, "SELECT pre, post, parent, poly FROM nodes WHERE parent = ? ORDER BY pre"},
		{&s.qChildrenMeta, "SELECT pre, post, parent FROM nodes WHERE parent = ? ORDER BY pre"},
		{&s.qBoundary, "SELECT MIN(pre) FROM nodes WHERE pre > ? AND post > ?"},
		{&s.qRangeScan, "SELECT pre, post, parent, poly FROM nodes WHERE pre > ? AND pre < ? ORDER BY pre"},
		{&s.qRangeMeta, "SELECT pre, post, parent FROM nodes WHERE pre > ? AND pre < ? ORDER BY pre"},
		{&s.qUpdate, "UPDATE nodes SET pre = ?, post = ?, parent = ?, poly = ? WHERE pre = ?"},
		{&s.qDelete, "DELETE FROM nodes WHERE pre = ?"},
	} {
		if err := direct(p.dst, p.q); err != nil {
			return err
		}
	}
	return nil
}

// rowsFromValues converts direct-engine result rows (pre, post, parent
// [, poly]) into NodeRows. Blob cells alias the stored row — NodeRow
// consumers treat share blobs as read-only, which every caller in this
// repo does (shares are immutable once encoded).
func rowsFromValues(rows [][]minisql.Value, withPoly bool) ([]NodeRow, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	out := make([]NodeRow, len(rows))
	for i, row := range rows {
		r := NodeRow{Pre: row[0].(int64), Post: row[1].(int64), Parent: row[2].(int64)}
		if withPoly {
			b, ok := row[3].([]byte)
			if !ok {
				return nil, fmt.Errorf("store: poly column holds %T", row[3])
			}
			r.Poly = b
		}
		out[i] = r
	}
	return out, nil
}

// InsertNode stores one row. It satisfies the encoder's RowSink.
func (s *Store) InsertNode(row NodeRow) error {
	if _, err := s.insert.Exec(row.Pre, row.Post, row.Parent, row.Poly); err != nil {
		return fmt.Errorf("store: insert pre=%d: %w", row.Pre, err)
	}
	return nil
}

// UpdateNode rewrites the row currently stored at oldPre to row —
// numbering and share blob together, so one call renumbers a shifted
// row or patches a rebuilt one. ErrNotFound when no row sits at oldPre.
func (s *Store) UpdateNode(oldPre int64, row NodeRow) error {
	n, err := s.qUpdate.Exec(row.Pre, row.Post, row.Parent, row.Poly, oldPre)
	if err != nil {
		return fmt.Errorf("store: update pre=%d: %w", oldPre, err)
	}
	if n == 0 {
		return NotFoundError(oldPre)
	}
	return nil
}

// DeleteNode removes the row at pre. ErrNotFound when absent.
func (s *Store) DeleteNode(pre int64) error {
	n, err := s.qDelete.Exec(pre)
	if err != nil {
		return fmt.Errorf("store: delete pre=%d: %w", pre, err)
	}
	if n == 0 {
		return NotFoundError(pre)
	}
	return nil
}

func scanRows(rows *sql.Rows) ([]NodeRow, error) {
	defer rows.Close()
	var out []NodeRow
	for rows.Next() {
		var r NodeRow
		if err := rows.Scan(&r.Pre, &r.Post, &r.Parent, &r.Poly); err != nil {
			return nil, fmt.Errorf("store: scan: %w", err)
		}
		out = append(out, r)
	}
	if err := rows.Err(); err != nil {
		return nil, fmt.Errorf("store: rows: %w", err)
	}
	return out, nil
}

// Root returns the unique node with parent = 0.
func (s *Store) Root() (NodeRow, error) {
	rows, err := s.rootQuery.Query()
	if err != nil {
		return NodeRow{}, fmt.Errorf("store: root: %w", err)
	}
	all, err := scanRows(rows)
	if err != nil {
		return NodeRow{}, err
	}
	switch len(all) {
	case 0:
		return NodeRow{}, fmt.Errorf("store: root: %w", ErrNotFound)
	case 1:
		return all[0], nil
	}
	return NodeRow{}, fmt.Errorf("store: %d root nodes", len(all))
}

// Node returns the node at pre.
func (s *Store) Node(pre int64) (NodeRow, error) {
	return s.nodeWith(s.qByPre, pre, true)
}

// NodeMeta returns the node at pre without its share blob (Poly nil) —
// the cheap fetch for structural navigation.
func (s *Store) NodeMeta(pre int64) (NodeRow, error) {
	return s.nodeWith(s.qByPreMeta, pre, false)
}

func (s *Store) nodeWith(q *minisql.Prepared, pre int64, withPoly bool) (NodeRow, error) {
	_, rows, err := q.Query(pre)
	if err != nil {
		return NodeRow{}, fmt.Errorf("store: node %d: %w", pre, err)
	}
	all, err := rowsFromValues(rows, withPoly)
	if err != nil {
		return NodeRow{}, err
	}
	if len(all) == 0 {
		return NodeRow{}, NotFoundError(pre)
	}
	return all[0], nil
}

// Children returns the child rows of the node at pre, in document order.
func (s *Store) Children(pre int64) ([]NodeRow, error) {
	_, rows, err := s.qChildren.Query(pre)
	if err != nil {
		return nil, fmt.Errorf("store: children of %d: %w", pre, err)
	}
	return rowsFromValues(rows, true)
}

// ChildrenMeta is Children without the share blobs.
func (s *Store) ChildrenMeta(pre int64) ([]NodeRow, error) {
	_, rows, err := s.qChildrenMeta.Query(pre)
	if err != nil {
		return nil, fmt.Errorf("store: children of %d: %w", pre, err)
	}
	return rowsFromValues(rows, false)
}

// Descendants returns all proper descendants of the node (pre, post), in
// document order, using the boundary optimization.
func (s *Store) Descendants(pre, post int64) ([]NodeRow, error) {
	return s.descendantsWith(s.qRangeScan, pre, post, true)
}

// DescendantsMeta is Descendants without the share blobs — what the
// engines' frontier expansion consumes.
func (s *Store) DescendantsMeta(pre, post int64) ([]NodeRow, error) {
	return s.descendantsWith(s.qRangeMeta, pre, post, false)
}

func (s *Store) descendantsWith(q *minisql.Prepared, pre, post int64, withPoly bool) ([]NodeRow, error) {
	_, brows, err := s.qBoundary.Query(pre, post)
	if err != nil {
		return nil, fmt.Errorf("store: boundary of %d: %w", pre, err)
	}
	hi := int64(math.MaxInt64)
	if len(brows) == 1 && len(brows[0]) == 1 && brows[0][0] != nil {
		hi = brows[0][0].(int64)
	}
	_, rows, err := q.Query(pre, hi)
	if err != nil {
		return nil, fmt.Errorf("store: descendants of %d: %w", pre, err)
	}
	return rowsFromValues(rows, withPoly)
}

// DescendantsNaive is the unoptimized variant (full pre-range scan with a
// post filter); kept for the ablation benchmark.
func (s *Store) DescendantsNaive(pre, post int64) ([]NodeRow, error) {
	rows, err := s.naiveDesc.Query(pre, post)
	if err != nil {
		return nil, fmt.Errorf("store: naive descendants of %d: %w", pre, err)
	}
	return scanRows(rows)
}

// Range returns the rows with pre in [lo, hi], in document order — the
// slice of the node table one cluster shard holds.
func (s *Store) Range(lo, hi int64) ([]NodeRow, error) {
	rows, err := s.rangeIncl.Query(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("store: range [%d, %d]: %w", lo, hi, err)
	}
	return scanRows(rows)
}

// CopyRange copies the rows with pre in [lo, hi] into a fresh store
// under a new DSN — the shared shard builder behind Database.DumpShard
// (shard files) and cluster.SplitStore (in-process shards). The caller
// owns the result: Close it and minisql.Drop the DSN when done.
func (s *Store) CopyRange(lo, hi int64) (*Store, string, error) {
	rows, err := s.Range(lo, hi)
	if err != nil {
		return nil, "", err
	}
	if len(rows) == 0 {
		return nil, "", fmt.Errorf("store: range [%d, %d] holds no rows", lo, hi)
	}
	dsn := minisql.FreshDSN()
	dst, err := Open(dsn)
	if err != nil {
		return nil, "", err
	}
	fail := func(err error) (*Store, string, error) {
		dst.Close()
		minisql.Drop(dsn)
		return nil, "", err
	}
	if err := dst.Init(); err != nil {
		return fail(err)
	}
	for _, row := range rows {
		if err := dst.InsertNode(row); err != nil {
			return fail(err)
		}
	}
	return dst, dsn, nil
}

// MinMaxPre returns the smallest and largest stored pre — the contiguous
// interval this table covers (shards report it to cluster clients at
// dial time). An empty table is ErrNotFound.
func (s *Store) MinMaxPre() (lo, hi int64, err error) {
	var nlo, nhi sql.NullInt64
	if err := s.minMaxQuery.QueryRow().Scan(&nlo, &nhi); err != nil {
		return 0, 0, fmt.Errorf("store: min/max pre: %w", err)
	}
	if !nlo.Valid || !nhi.Valid {
		return 0, 0, fmt.Errorf("store: min/max pre of empty table: %w", ErrNotFound)
	}
	return nlo.Int64, nhi.Int64, nil
}

// Count returns the number of stored nodes.
func (s *Store) Count() (int64, error) {
	var n int64
	if err := s.countQuery.QueryRow().Scan(&n); err != nil {
		return 0, fmt.Errorf("store: count: %w", err)
	}
	return n, nil
}

// ChildCount returns the number of children of the node at pre without
// fetching the rows (used by the equality-test cost accounting).
func (s *Store) ChildCount(pre int64) (int64, error) {
	var n int64
	if err := s.childrenCnt.QueryRow(pre).Scan(&n); err != nil {
		return 0, fmt.Errorf("store: child count of %d: %w", pre, err)
	}
	return n, nil
}

// Dump serializes the underlying database (see minisql.Dump).
func (s *Store) Dump(w io.Writer) error {
	return minisql.Get(s.dsn).Dump(w)
}

// Load restores the underlying database from a dump and re-prepares
// statements.
func (s *Store) Load(r io.Reader) error {
	if err := minisql.Get(s.dsn).Load(r); err != nil {
		return err
	}
	return s.prepare()
}

// Close releases the database handle (the data stays registered under the
// DSN until minisql.Drop).
func (s *Store) Close() error {
	return s.db.Close()
}
