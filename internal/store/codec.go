package store

import (
	"encoding/binary"
	"fmt"
)

// Fixed-offset binary row layout of the v2 engine. Every stored row is
//
//	[ 0: 8)  pre     int64, little endian
//	[ 8:16)  post    int64, little endian
//	[16:24)  parent  int64, little endian
//	[24:28)  polyLen uint32, little endian
//	[28: . ) poly    polyLen bytes, in place
//
// The three navigation fields sit at fixed offsets so a metadata scan
// decodes them with three loads and never touches the share blob; the
// blob is length-prefixed in place so a share fetch is one bounds check
// and one copy. Share blobs have a fixed width per ring (PolyBytes), so
// in practice every row of one table is the same size — which is what
// lets UPDATE rewrite a row in its slot without moving anything.
const (
	rowOffPre     = 0
	rowOffPost    = 8
	rowOffParent  = 16
	rowOffPolyLen = 24
	rowHeaderLen  = 28
)

// rowSize returns the encoded size of row.
func rowSize(row NodeRow) int { return rowHeaderLen + len(row.Poly) }

// encodeRow appends the fixed-offset encoding of row to dst.
func encodeRow(dst []byte, row NodeRow) []byte {
	var hdr [rowHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[rowOffPre:], uint64(row.Pre))
	binary.LittleEndian.PutUint64(hdr[rowOffPost:], uint64(row.Post))
	binary.LittleEndian.PutUint64(hdr[rowOffParent:], uint64(row.Parent))
	binary.LittleEndian.PutUint32(hdr[rowOffPolyLen:], uint32(len(row.Poly)))
	dst = append(dst, hdr[:]...)
	return append(dst, row.Poly...)
}

// decodeRowMeta reads the three navigation fields without touching the
// blob. b must be a full encoded row (callers pass slot-bounded slices).
func decodeRowMeta(b []byte) (pre, post, parent int64) {
	pre = int64(binary.LittleEndian.Uint64(b[rowOffPre:]))
	post = int64(binary.LittleEndian.Uint64(b[rowOffPost:]))
	parent = int64(binary.LittleEndian.Uint64(b[rowOffParent:]))
	return
}

// decodeRow decodes a full row. The returned Poly aliases b — callers
// that let the row escape the page pin must copy it (see v2 arena).
func decodeRow(b []byte) (NodeRow, error) {
	if len(b) < rowHeaderLen {
		return NodeRow{}, fmt.Errorf("store: short row: %d bytes", len(b))
	}
	pre, post, parent := decodeRowMeta(b)
	n := binary.LittleEndian.Uint32(b[rowOffPolyLen:])
	if int(n) > len(b)-rowHeaderLen {
		return NodeRow{}, fmt.Errorf("store: row poly length %d exceeds slot (%d bytes)", n, len(b))
	}
	return NodeRow{Pre: pre, Post: post, Parent: parent, Poly: b[rowHeaderLen : rowHeaderLen+int(n)]}, nil
}
