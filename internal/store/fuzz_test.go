package store

import (
	"bytes"
	"testing"
)

// FuzzRowCodec pins the row codec: encode→decode is the identity, and
// decoding arbitrary bytes never panics — it either errors or returns a
// row whose poly stays inside the input slice.
func FuzzRowCodec(f *testing.F) {
	f.Add(int64(1), int64(1), int64(0), []byte{}, uint16(0))
	f.Add(int64(42), int64(99), int64(7), []byte("poly bytes here"), uint16(3))
	f.Add(int64(-1), int64(1)<<40, int64(-9), bytes.Repeat([]byte{0xAB}, 300), uint16(29))
	f.Fuzz(func(t *testing.T, pre, post, parent int64, poly []byte, cut uint16) {
		row := NodeRow{Pre: pre, Post: post, Parent: parent, Poly: poly}
		enc := encodeRow(nil, row)
		if len(enc) != rowSize(row) {
			t.Fatalf("encoded %d bytes, rowSize says %d", len(enc), rowSize(row))
		}
		got, err := decodeRow(enc)
		if err != nil {
			t.Fatalf("decode of fresh encoding: %v", err)
		}
		if got.Pre != pre || got.Post != post || got.Parent != parent || !bytes.Equal(got.Poly, poly) {
			t.Fatalf("round trip %+v != %+v", got, row)
		}
		p2, q2, r2 := decodeRowMeta(enc)
		if p2 != pre || q2 != post || r2 != parent {
			t.Fatalf("meta decode (%d,%d,%d)", p2, q2, r2)
		}

		// Truncation must never read past the slice or panic.
		trunc := enc[:int(cut)%(len(enc)+1)]
		if row, err := decodeRow(trunc); err == nil {
			if len(row.Poly) > len(trunc) {
				t.Fatalf("decoded poly of %d bytes from %d-byte slice", len(row.Poly), len(trunc))
			}
		}
	})
}

// FuzzSlottedPage drives a page with an arbitrary op script (insert,
// update, delete) against a shadow model and asserts the page never
// corrupts a surviving row, never resurrects a dead slot, and keeps its
// live/free accounting consistent.
func FuzzSlottedPage(f *testing.F) {
	f.Add([]byte{0x00, 0x05, 0x40, 0x06, 0x80, 0x00, 0x00, 0x07})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x40, 0x00, 0x80, 0x01})
	f.Add(bytes.Repeat([]byte{0x00, 0xFF}, 40))
	f.Fuzz(func(t *testing.T, script []byte) {
		p := make([]byte, pageSize)
		pageInit(p)
		model := map[int][]byte{} // slot → expected row bytes
		seq := int64(0)
		mkRow := func(sz int) []byte {
			seq++
			poly := make([]byte, sz)
			for i := range poly {
				poly[i] = byte(seq + int64(i))
			}
			return encodeRow(nil, NodeRow{Pre: seq, Post: seq * 2, Parent: seq / 2, Poly: poly})
		}
		for i := 0; i+1 < len(script); i += 2 {
			op, arg := script[i]>>6, int(script[i]&0x3F)<<8|int(script[i+1])
			switch op {
			case 0, 3: // insert, arg = poly size
				row := mkRow(arg % 1000)
				slot, ok := pageInsert(p, row)
				if ok {
					if _, exists := model[slot]; exists {
						t.Fatalf("insert reused live slot %d", slot)
					}
					model[slot] = row
				} else if pageFree(p) >= len(row)+slotLen {
					t.Fatalf("insert of %d bytes refused with %d free", len(row), pageFree(p))
				}
			case 1: // update slot arg
				slot := 0
				if n := pageNSlots(p); n > 0 {
					slot = arg % n
				}
				row := mkRow(arg % 500)
				ok := pageUpdate(p, slot, row)
				_, live := model[slot]
				if ok && !live {
					t.Fatalf("update resurrected dead slot %d", slot)
				}
				if ok {
					model[slot] = row
				}
			case 2: // delete slot arg
				slot := 0
				if n := pageNSlots(p); n > 0 {
					slot = arg % n
				}
				ok := pageDelete(p, slot)
				if _, live := model[slot]; live != ok {
					t.Fatalf("delete(%d) = %v, model live = %v", slot, ok, live)
				}
				delete(model, slot)
			}
		}
		if pageLive(p) != len(model) {
			t.Fatalf("live = %d, model has %d", pageLive(p), len(model))
		}
		for slot, want := range model {
			got := pageSlot(p, slot)
			if got == nil {
				t.Fatalf("live slot %d reads dead", slot)
			}
			if !bytes.Equal(got[:len(want)], want) {
				t.Fatalf("slot %d corrupted", slot)
			}
		}
		for i := 0; i < pageNSlots(p); i++ {
			if _, live := model[i]; !live && pageSlot(p, i) != nil {
				t.Fatalf("dead slot %d reads live", i)
			}
		}
	})
}
