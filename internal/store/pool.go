package store

import "sync"

// pager is the page "disk" of one v2 table: a flat array of pageSize
// pages addressed by 1-based IDs. It is the authority for every page
// not currently held dirty in the buffer pool. Two spaces exist per
// table — heap pages (dumped, byte-deterministic) and index pages
// (rebuilt on load, never dumped) — each with its own pager.
//
// The follow-up ROADMAP item (mmap read path) swaps this for a
// file-backed implementation; nothing above the pool sees the change.
type pager struct {
	pages [][]byte
}

func (pg *pager) alloc() uint32 {
	pg.pages = append(pg.pages, make([]byte, pageSize))
	return uint32(len(pg.pages))
}

func (pg *pager) read(id uint32, dst []byte) {
	copy(dst, pg.pages[id-1])
}

func (pg *pager) write(id uint32, src []byte) {
	copy(pg.pages[id-1], src)
}

func (pg *pager) count() int { return len(pg.pages) }

// Page spaces within one pool.
const (
	spaceHeap  = 0
	spaceIndex = 1
)

type poolKey struct {
	space uint8
	page  uint32
}

// PoolStats is a buffer pool's counter snapshot, exposed per tenant on
// /metrics. Hits/(Hits+Misses) is the hit rate; Evictions counts CLOCK
// victims written back or discarded to make room.
type PoolStats struct {
	Pages     int    `json:"pages"`     // configured frame capacity
	Resident  int    `json:"resident"`  // frames currently holding a page
	Hits      uint64 `json:"hits"`      // fetches served from a frame
	Misses    uint64 `json:"misses"`    // fetches that read the pager
	Evictions uint64 `json:"evictions"` // frames recycled by the clock
}

// frame is one buffer-pool slot.
type frame struct {
	key   poolKey
	buf   []byte
	pin   int
	ref   bool // CLOCK reference bit
	dirty bool
	used  bool
}

// bufferPool caches pages of both spaces with CLOCK eviction and
// pin/unpin. All accesses to page bytes go through fetch/unpin; a
// pinned frame is never evicted, so its bytes are stable for the pin's
// duration. Evicting a dirty frame writes it back to its pager first.
//
// DefaultPoolPages frames cover 8 MiB — comfortably the whole table for
// the paper-scale documents, so steady-state reads are all hits; the
// capacity exists so a server hosting many tenants under one
// CacheBudget keeps a bounded footprint per table.
const DefaultPoolPages = 1024

// minPoolPages keeps the pool larger than the deepest simultaneous pin
// set (a tree descent plus a heap page plus split scratch).
const minPoolPages = 16

type bufferPool struct {
	mu     sync.Mutex
	frames []frame
	table  map[poolKey]int
	hand   int
	cap    int

	heap, idx *pager

	hits, misses, evictions uint64
}

func newBufferPool(capPages int, heap, idx *pager) *bufferPool {
	if capPages <= 0 {
		capPages = DefaultPoolPages
	}
	if capPages < minPoolPages {
		capPages = minPoolPages
	}
	return &bufferPool{
		table: make(map[poolKey]int, capPages),
		cap:   capPages,
		heap:  heap,
		idx:   idx,
	}
}

func (bp *bufferPool) pagerOf(space uint8) *pager {
	if space == spaceHeap {
		return bp.heap
	}
	return bp.idx
}

// fetch pins the page and returns its frame index and bytes. The caller
// must unpin exactly once, marking whether it wrote the bytes.
func (bp *bufferPool) fetch(space uint8, page uint32) (int, []byte) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	key := poolKey{space, page}
	if i, ok := bp.table[key]; ok {
		f := &bp.frames[i]
		f.pin++
		f.ref = true
		bp.hits++
		return i, f.buf
	}
	bp.misses++
	i := bp.victim()
	f := &bp.frames[i]
	if f.used {
		if f.dirty {
			bp.pagerOf(f.key.space).write(f.key.page, f.buf)
		}
		delete(bp.table, f.key)
		bp.evictions++
	}
	if f.buf == nil {
		f.buf = make([]byte, pageSize)
	}
	bp.pagerOf(space).read(page, f.buf)
	f.key = key
	f.pin = 1
	f.ref = true
	f.dirty = false
	f.used = true
	bp.table[key] = i
	return i, f.buf
}

// victim returns a frame index to (re)use: an unused frame while the
// pool grows toward capacity, then the CLOCK victim among unpinned
// frames. If every frame is pinned the pool grows past capacity rather
// than deadlock — scans pin one page at a time, so this is a safety
// valve, not a steady state.
func (bp *bufferPool) victim() int {
	if len(bp.frames) < bp.cap {
		bp.frames = append(bp.frames, frame{})
		return len(bp.frames) - 1
	}
	n := len(bp.frames)
	for sweep := 0; sweep < 2*n; sweep++ {
		i := bp.hand
		bp.hand = (bp.hand + 1) % n
		f := &bp.frames[i]
		if f.pin > 0 {
			continue
		}
		if f.ref {
			f.ref = false
			continue
		}
		return i
	}
	bp.frames = append(bp.frames, frame{})
	return len(bp.frames) - 1
}

func (bp *bufferPool) unpin(i int, dirty bool) {
	bp.mu.Lock()
	f := &bp.frames[i]
	f.pin--
	if dirty {
		f.dirty = true
	}
	bp.mu.Unlock()
}

// flush writes every dirty frame of the space back to its pager (frames
// stay resident and clean). Dump calls this so the heap pager holds the
// authoritative bytes.
func (bp *bufferPool) flush(space uint8) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for i := range bp.frames {
		f := &bp.frames[i]
		if f.used && f.dirty && f.key.space == space {
			bp.pagerOf(space).write(f.key.page, f.buf)
			f.dirty = false
		}
	}
}

// drop discards every frame of the space without write-back — used when
// the space is rebuilt wholesale (Load).
func (bp *bufferPool) drop(space uint8) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for i := range bp.frames {
		f := &bp.frames[i]
		if f.used && f.key.space == space {
			delete(bp.table, f.key)
			f.used = false
			f.dirty = false
			f.ref = false
		}
	}
}

func (bp *bufferPool) stats() PoolStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	resident := 0
	for i := range bp.frames {
		if bp.frames[i].used {
			resident++
		}
	}
	return PoolStats{
		Pages:     bp.cap,
		Resident:  resident,
		Hits:      bp.hits,
		Misses:    bp.misses,
		Evictions: bp.evictions,
	}
}
