package store

import "encoding/binary"

// Disk-aware B⁺-tree over pool-managed index pages, keyed by a pair of
// int64s compared lexicographically. The v2 engine runs two of them per
// table: (pre, 0) → RID for point lookups and pre-range scans, and
// (parent, pre) → RID replacing minisql's parent index for Children.
// Index pages live in the same buffer pool as heap pages — hot upper
// levels stay resident under CLOCK exactly like hot heap pages — but in
// their own page space: the tree is rebuilt on Load and never dumped,
// which keeps Dump's byte-determinism a heap-only property.
//
// Page layouts (pageSize bytes):
//
//	leaf   'L': [2:4) nkeys, [4:8) next leaf, entries at 16+22i:
//	            keyA int64, keyB int64, page uint32, slot uint16
//	branch 'B': [2:4) nkeys, [4:8) child0, entries at 16+20i:
//	            keyA int64, keyB int64, child uint32
//
// child(0) = child0; child(i) = entry[i-1].child; entry keys separate
// child(i) and child(i+1). Deletes are lazy (no rebalancing): an
// under-full or empty leaf stays linked and scans skip it — fine for a
// structure that is rebuilt wholesale on every Load.
type treeKey struct{ a, b int64 }

func (k treeKey) less(o treeKey) bool {
	return k.a < o.a || (k.a == o.a && k.b < o.b)
}

type rid struct {
	page uint32
	slot uint16
}

const (
	pageTypeLeaf   = 'L'
	pageTypeBranch = 'B'

	idxOffNKeys = 2
	idxOffLink  = 4 // next leaf / child0
	idxHdrLen   = 16

	leafEntryLen   = 22
	branchEntryLen = 20
)

type bptree struct {
	pool *bufferPool
	pg   *pager
	root uint32

	// Entry capacities, derived from the page size; tests lower them to
	// force deep trees on small data.
	leafCap, branchCap int
}

func newBptree(pool *bufferPool, pg *pager) *bptree {
	t := &bptree{
		pool:      pool,
		pg:        pg,
		leafCap:   (pageSize - idxHdrLen) / leafEntryLen,
		branchCap: (pageSize - idxHdrLen) / branchEntryLen,
	}
	t.root = t.newLeaf()
	return t
}

func (t *bptree) newLeaf() uint32 {
	id := t.pg.alloc()
	fi, b := t.pool.fetch(spaceIndex, id)
	clear(b)
	b[0] = pageTypeLeaf
	t.pool.unpin(fi, true)
	return id
}

func nKeys(b []byte) int { return int(binary.LittleEndian.Uint16(b[idxOffNKeys:])) }
func setNKeys(b []byte, n int) {
	binary.LittleEndian.PutUint16(b[idxOffNKeys:], uint16(n))
}
func link(b []byte) uint32        { return binary.LittleEndian.Uint32(b[idxOffLink:]) }
func setLink(b []byte, id uint32) { binary.LittleEndian.PutUint32(b[idxOffLink:], id) }

func leafKeyAt(b []byte, i int) treeKey {
	off := idxHdrLen + leafEntryLen*i
	return treeKey{
		a: int64(binary.LittleEndian.Uint64(b[off:])),
		b: int64(binary.LittleEndian.Uint64(b[off+8:])),
	}
}

func leafRIDAt(b []byte, i int) rid {
	off := idxHdrLen + leafEntryLen*i
	return rid{
		page: binary.LittleEndian.Uint32(b[off+16:]),
		slot: binary.LittleEndian.Uint16(b[off+20:]),
	}
}

func leafSetEntry(b []byte, i int, k treeKey, r rid) {
	off := idxHdrLen + leafEntryLen*i
	binary.LittleEndian.PutUint64(b[off:], uint64(k.a))
	binary.LittleEndian.PutUint64(b[off+8:], uint64(k.b))
	binary.LittleEndian.PutUint32(b[off+16:], r.page)
	binary.LittleEndian.PutUint16(b[off+20:], r.slot)
}

func branchKeyAt(b []byte, i int) treeKey {
	off := idxHdrLen + branchEntryLen*i
	return treeKey{
		a: int64(binary.LittleEndian.Uint64(b[off:])),
		b: int64(binary.LittleEndian.Uint64(b[off+8:])),
	}
}

func branchChildAt(b []byte, i int) uint32 {
	if i == 0 {
		return link(b)
	}
	off := idxHdrLen + branchEntryLen*(i-1)
	return binary.LittleEndian.Uint32(b[off+16:])
}

func branchSetEntry(b []byte, i int, k treeKey, child uint32) {
	off := idxHdrLen + branchEntryLen*i
	binary.LittleEndian.PutUint64(b[off:], uint64(k.a))
	binary.LittleEndian.PutUint64(b[off+8:], uint64(k.b))
	binary.LittleEndian.PutUint32(b[off+16:], child)
}

// leafSearch returns the first index whose key is ≥ k, and whether it
// is an exact match.
func leafSearch(b []byte, k treeKey) (int, bool) {
	lo, hi := 0, nKeys(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKeyAt(b, mid).less(k) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < nKeys(b) && leafKeyAt(b, lo) == k
}

// branchSearch returns the child index to descend for k: the first i
// with k < key[i], else nKeys.
func branchSearch(b []byte, k treeKey) int {
	lo, hi := 0, nKeys(b)
	for lo < hi {
		mid := (lo + hi) / 2
		if k.less(branchKeyAt(b, mid)) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// get returns the RID stored under k.
func (t *bptree) get(k treeKey) (rid, bool) {
	id := t.root
	for {
		fi, b := t.pool.fetch(spaceIndex, id)
		if b[0] == pageTypeBranch {
			next := branchChildAt(b, branchSearch(b, k))
			t.pool.unpin(fi, false)
			id = next
			continue
		}
		pos, exact := leafSearch(b, k)
		var r rid
		if exact {
			r = leafRIDAt(b, pos)
		}
		t.pool.unpin(fi, false)
		return r, exact
	}
}

// set inserts k → r, overwriting any existing entry; reports whether an
// entry was replaced.
func (t *bptree) set(k treeKey, r rid) bool {
	replaced, sk, right := t.insertRec(t.root, k, r)
	if right != 0 {
		// Root split: grow a level.
		id := t.pg.alloc()
		fi, b := t.pool.fetch(spaceIndex, id)
		clear(b)
		b[0] = pageTypeBranch
		setNKeys(b, 1)
		setLink(b, t.root)
		branchSetEntry(b, 0, sk, right)
		t.pool.unpin(fi, true)
		t.root = id
	}
	return replaced
}

func (t *bptree) insertRec(id uint32, k treeKey, r rid) (replaced bool, splitKey treeKey, rightID uint32) {
	fi, b := t.pool.fetch(spaceIndex, id)
	if b[0] == pageTypeBranch {
		idx := branchSearch(b, k)
		child := branchChildAt(b, idx)
		replaced, sk, rc := t.insertRec(child, k, r)
		if rc == 0 {
			t.pool.unpin(fi, false)
			return replaced, treeKey{}, 0
		}
		n := nKeys(b)
		if n < t.branchCap {
			// Shift entries [idx, n) right and place (sk, rc) at idx.
			base := idxHdrLen + branchEntryLen*idx
			copy(b[base+branchEntryLen:idxHdrLen+branchEntryLen*(n+1)], b[base:idxHdrLen+branchEntryLen*n])
			branchSetEntry(b, idx, sk, rc)
			setNKeys(b, n+1)
			t.pool.unpin(fi, true)
			return replaced, treeKey{}, 0
		}
		// Branch split: materialize keys/children with the new entry in
		// place, push the middle key up.
		keys := make([]treeKey, 0, n+1)
		children := make([]uint32, 0, n+2)
		children = append(children, link(b))
		for i := 0; i < n; i++ {
			keys = append(keys, branchKeyAt(b, i))
			children = append(children, branchChildAt(b, i+1))
		}
		keys = append(keys[:idx], append([]treeKey{sk}, keys[idx:]...)...)
		children = append(children[:idx+1], append([]uint32{rc}, children[idx+1:]...)...)
		mid := len(keys) / 2
		up := keys[mid]
		newID := t.pg.alloc()
		nfi, nb := t.pool.fetch(spaceIndex, newID)
		clear(nb)
		nb[0] = pageTypeBranch
		setLink(nb, children[mid+1])
		for i, kk := range keys[mid+1:] {
			branchSetEntry(nb, i, kk, children[mid+2+i])
		}
		setNKeys(nb, len(keys)-mid-1)
		t.pool.unpin(nfi, true)
		clear(b[idxHdrLen:])
		setLink(b, children[0])
		for i := 0; i < mid; i++ {
			branchSetEntry(b, i, keys[i], children[i+1])
		}
		setNKeys(b, mid)
		t.pool.unpin(fi, true)
		return replaced, up, newID
	}

	// Leaf.
	pos, exact := leafSearch(b, k)
	n := nKeys(b)
	if exact {
		leafSetEntry(b, pos, k, r)
		t.pool.unpin(fi, true)
		return true, treeKey{}, 0
	}
	if n < t.leafCap {
		base := idxHdrLen + leafEntryLen*pos
		copy(b[base+leafEntryLen:idxHdrLen+leafEntryLen*(n+1)], b[base:idxHdrLen+leafEntryLen*n])
		leafSetEntry(b, pos, k, r)
		setNKeys(b, n+1)
		t.pool.unpin(fi, true)
		return false, treeKey{}, 0
	}
	// Leaf split: upper half moves to a fresh leaf spliced into the
	// chain, then the entry lands in whichever half owns k.
	h := (n + 1) / 2
	newID := t.pg.alloc()
	nfi, nb := t.pool.fetch(spaceIndex, newID)
	clear(nb)
	nb[0] = pageTypeLeaf
	copy(nb[idxHdrLen:idxHdrLen+leafEntryLen*(n-h)], b[idxHdrLen+leafEntryLen*h:idxHdrLen+leafEntryLen*n])
	setNKeys(nb, n-h)
	setLink(nb, link(b))
	setLink(b, newID)
	setNKeys(b, h)
	sk := leafKeyAt(nb, 0)
	if k.less(sk) {
		pos, _ = leafSearch(b, k)
		base := idxHdrLen + leafEntryLen*pos
		copy(b[base+leafEntryLen:], b[base:idxHdrLen+leafEntryLen*h])
		leafSetEntry(b, pos, k, r)
		setNKeys(b, h+1)
	} else {
		pos, _ = leafSearch(nb, k)
		base := idxHdrLen + leafEntryLen*pos
		copy(nb[base+leafEntryLen:], nb[base:idxHdrLen+leafEntryLen*(n-h)])
		leafSetEntry(nb, pos, k, r)
		setNKeys(nb, n-h+1)
	}
	t.pool.unpin(nfi, true)
	t.pool.unpin(fi, true)
	return false, sk, newID
}

// delete removes k; reports whether it was present. Lazy: leaves are
// never merged and separators stay behind, which preserves routing.
func (t *bptree) delete(k treeKey) bool {
	id := t.root
	for {
		fi, b := t.pool.fetch(spaceIndex, id)
		if b[0] == pageTypeBranch {
			next := branchChildAt(b, branchSearch(b, k))
			t.pool.unpin(fi, false)
			id = next
			continue
		}
		pos, exact := leafSearch(b, k)
		if !exact {
			t.pool.unpin(fi, false)
			return false
		}
		n := nKeys(b)
		base := idxHdrLen + leafEntryLen*pos
		copy(b[base:], b[base+leafEntryLen:idxHdrLen+leafEntryLen*n])
		setNKeys(b, n-1)
		t.pool.unpin(fi, true)
		return true
	}
}

// scanFrom visits entries with key ≥ k in ascending order until fn
// returns false. One page pin per leaf; empty leaves are skipped.
func (t *bptree) scanFrom(k treeKey, fn func(k treeKey, r rid) bool) {
	id := t.root
	for {
		fi, b := t.pool.fetch(spaceIndex, id)
		if b[0] != pageTypeBranch {
			pos, _ := leafSearch(b, k)
			for {
				n := nKeys(b)
				for ; pos < n; pos++ {
					if !fn(leafKeyAt(b, pos), leafRIDAt(b, pos)) {
						t.pool.unpin(fi, false)
						return
					}
				}
				next := link(b)
				t.pool.unpin(fi, false)
				if next == 0 {
					return
				}
				fi, b = t.pool.fetch(spaceIndex, next)
				pos = 0
			}
		}
		next := branchChildAt(b, branchSearch(b, k))
		t.pool.unpin(fi, false)
		id = next
	}
}

// min returns the smallest key, max the largest (ok=false when empty).
func (t *bptree) min() (treeKey, rid, bool) {
	id := t.root
	for {
		fi, b := t.pool.fetch(spaceIndex, id)
		if b[0] == pageTypeBranch {
			next := branchChildAt(b, 0)
			t.pool.unpin(fi, false)
			id = next
			continue
		}
		for {
			if n := nKeys(b); n > 0 {
				k, r := leafKeyAt(b, 0), leafRIDAt(b, 0)
				t.pool.unpin(fi, false)
				return k, r, true
			}
			next := link(b)
			t.pool.unpin(fi, false)
			if next == 0 {
				return treeKey{}, rid{}, false
			}
			fi, b = t.pool.fetch(spaceIndex, next)
		}
	}
}

func (t *bptree) max() (treeKey, rid, bool) {
	id := t.root
	for {
		fi, b := t.pool.fetch(spaceIndex, id)
		if b[0] == pageTypeBranch {
			next := branchChildAt(b, nKeys(b))
			t.pool.unpin(fi, false)
			id = next
			continue
		}
		// Rightmost leaf; may be empty after lazy deletes, in which case
		// a full reverse walk is unavailable (no prev pointers) — fall
		// back to a forward scan from the front. Rare: only after every
		// key ≥ the rightmost separator was deleted.
		if n := nKeys(b); n > 0 {
			k, r := leafKeyAt(b, n-1), leafRIDAt(b, n-1)
			t.pool.unpin(fi, false)
			return k, r, true
		}
		t.pool.unpin(fi, false)
		var lk treeKey
		var lr rid
		found := false
		t.scanFrom(treeKey{a: minInt64, b: minInt64}, func(k treeKey, r rid) bool {
			lk, lr, found = k, r, true
			return true
		})
		return lk, lr, found
	}
}

const minInt64 = -1 << 63
