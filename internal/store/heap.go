package store

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"encshare/internal/minisql"
)

// The v2 engine: slotted heap pages clustered by pre, a B⁺-tree on pre
// for point lookups and range scans, a (parent, pre) B⁺-tree replacing
// the parent index, and one CLOCK buffer pool holding both heap and
// index pages. Descendants(pre) is a tree descent to the first key past
// pre followed by leaf-chain reads that decode (or, for the *Meta
// twins, skip) poly blobs straight out of pinned pages — no SQL layer,
// no per-cell boxing.
//
// Tables register under the same DSN namespace as minisql databases so
// every existing lifecycle call keeps working: Open(dsn) twice shares
// one table, minisql.Drop(dsn) frees it (via minisql.OnDrop).
type pagedTable struct {
	mu sync.RWMutex

	heapPg *pager
	idxPg  *pager
	pool   *bufferPool
	pre    *bptree // (pre, 0) → rid
	kids   *bptree // (parent, pre) → rid

	firstHeap uint32 // head of the pre-ordered heap page chain
	rowCount  int64
	created   bool // Init or Load ran

	scratch []byte // row-encode buffer, reused under mu
}

var (
	v2mu     sync.Mutex
	v2tables = map[string]*pagedTable{}
)

func init() {
	// One Drop call releases a DSN whichever engine backs it.
	minisql.OnDrop(func(name string) {
		v2mu.Lock()
		delete(v2tables, name)
		v2mu.Unlock()
	})
}

// v2get returns the table registered under dsn, creating it on demand
// (mirroring minisql.Get). poolPages only applies to a fresh table.
func v2get(dsn string, poolPages int) *pagedTable {
	v2mu.Lock()
	defer v2mu.Unlock()
	if tb, ok := v2tables[dsn]; ok {
		return tb
	}
	tb := newPagedTable(poolPages)
	v2tables[dsn] = tb
	return tb
}

func newPagedTable(poolPages int) *pagedTable {
	tb := &pagedTable{heapPg: &pager{}, idxPg: &pager{}}
	tb.pool = newBufferPool(poolPages, tb.heapPg, tb.idxPg)
	tb.pre = newBptree(tb.pool, tb.idxPg)
	tb.kids = newBptree(tb.pool, tb.idxPg)
	return tb
}

// v2store is one Store handle on a pagedTable.
type v2store struct {
	dsn string
	tbl *pagedTable
}

func (s *v2store) Init() error {
	tb := s.tbl
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.created {
		return fmt.Errorf("store: init: table nodes already exists")
	}
	tb.created = true
	return nil
}

func (s *v2store) Attach() error {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	if !tb.created {
		return fmt.Errorf("store: attach: no nodes table under %q", s.dsn)
	}
	return nil
}

func (s *v2store) Close() error { return nil }

func (s *v2store) PoolStats() (PoolStats, bool) {
	return s.tbl.pool.stats(), true
}

// ---- mutations ----

func (s *v2store) InsertNode(row NodeRow) error {
	tb := s.tbl
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if _, ok := tb.pre.get(treeKey{a: row.Pre}); ok {
		return fmt.Errorf("store: insert pre=%d: duplicate key", row.Pre)
	}
	r, err := tb.place(row)
	if err != nil {
		return fmt.Errorf("store: insert pre=%d: %w", row.Pre, err)
	}
	tb.pre.set(treeKey{a: row.Pre}, r)
	tb.kids.set(treeKey{a: row.Parent, b: row.Pre}, r)
	tb.rowCount++
	return nil
}

// place writes row bytes into the heap page its pre clusters to,
// splitting a full page by pre-median, and returns the RID. Callers
// hold mu and maintain the trees.
func (tb *pagedTable) place(row NodeRow) (rid, error) {
	if rowSize(row) > maxRowBytes {
		return rid{}, fmt.Errorf("row of %d bytes exceeds page payload (%d)", rowSize(row), maxRowBytes)
	}
	tb.scratch = encodeRow(tb.scratch[:0], row)

	var target uint32
	if tb.rowCount == 0 {
		if tb.firstHeap == 0 {
			tb.firstHeap = tb.heapPg.alloc()
			fi, b := tb.pool.fetch(spaceHeap, tb.firstHeap)
			pageInit(b)
			tb.pool.unpin(fi, true)
		}
		target = tb.firstHeap
	} else {
		// Cluster by pre: land on the page of the successor key, or the
		// last page when pre is beyond the maximum.
		found := false
		tb.pre.scanFrom(treeKey{a: row.Pre, b: minInt64}, func(_ treeKey, r rid) bool {
			target, found = r.page, true
			return false
		})
		if !found {
			_, r, ok := tb.pre.max()
			if !ok {
				return rid{}, fmt.Errorf("index lost its keys (corrupt table)")
			}
			target = r.page
		}
	}

	fi, b := tb.pool.fetch(spaceHeap, target)
	if slot, ok := pageInsert(b, tb.scratch); ok {
		tb.pool.unpin(fi, true)
		return rid{page: target, slot: uint16(slot)}, nil
	}
	if pageLive(b) < 2 {
		// Too few live rows to split: the page is clogged with dead
		// slots and payload residue — rebuild it in place.
		if err := tb.compactHeap(target, b); err != nil {
			tb.pool.unpin(fi, true)
			return rid{}, err
		}
		slot, ok := pageInsert(b, tb.scratch)
		tb.pool.unpin(fi, true)
		if !ok {
			return rid{}, fmt.Errorf("row of %d bytes does not fit an empty page", len(tb.scratch))
		}
		return rid{page: target, slot: uint16(slot)}, nil
	}
	// Full: split by pre-median, then land in whichever half owns pre.
	rightID, rightMin, err := tb.splitHeap(target, fi, b)
	if err != nil {
		tb.pool.unpin(fi, true)
		return rid{}, err
	}
	if row.Pre >= rightMin {
		tb.pool.unpin(fi, true)
		target = rightID
		fi, b = tb.pool.fetch(spaceHeap, target)
	}
	slot, ok := pageInsert(b, tb.scratch)
	if !ok {
		tb.pool.unpin(fi, true)
		return rid{}, fmt.Errorf("row of %d bytes does not fit a split page", len(tb.scratch))
	}
	tb.pool.unpin(fi, true)
	return rid{page: target, slot: uint16(slot)}, nil
}

// compactHeap rebuilds page id in place, keeping only live rows (the
// caller holds the pin and marks it dirty) and fixing their tree RIDs.
func (tb *pagedTable) compactHeap(id uint32, b []byte) error {
	type liveRow struct {
		pre, parent int64
		data        []byte
	}
	var rows []liveRow
	var arena []byte
	for i := 0; i < pageNSlots(b); i++ {
		sl := pageSlot(b, i)
		if sl == nil {
			continue
		}
		pre, _, parent := decodeRowMeta(sl)
		arena = append(arena, sl...)
		rows = append(rows, liveRow{pre: pre, parent: parent, data: arena[len(arena)-len(sl):]})
	}
	off := 0
	for i := range rows {
		rows[i].data = arena[off : off+len(rows[i].data)]
		off += len(rows[i].data)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pre < rows[j].pre })
	next := pageNext(b)
	pageInit(b)
	pageSetNext(b, next)
	for _, rw := range rows {
		slot, ok := pageInsert(b, rw.data)
		if !ok {
			return fmt.Errorf("page %d overflow during compaction", id)
		}
		r := rid{page: id, slot: uint16(slot)}
		tb.pre.set(treeKey{a: rw.pre}, r)
		tb.kids.set(treeKey{a: rw.parent, b: rw.pre}, r)
	}
	return nil
}

// splitHeap rebuilds full page id (pinned as fi/b by the caller, left
// dirty) into two compacted halves by pre order, splices the new right
// page into the chain, and rewrites the B⁺-tree RIDs of every row on
// both halves. Returns the new page and its minimum pre.
func (tb *pagedTable) splitHeap(id uint32, fi int, b []byte) (rightID uint32, rightMin int64, err error) {
	type liveRow struct {
		pre, parent int64
		data        []byte
	}
	rows := make([]liveRow, 0, pageNSlots(b))
	var arena []byte
	for i := 0; i < pageNSlots(b); i++ {
		sl := pageSlot(b, i)
		if sl == nil {
			continue
		}
		pre, _, parent := decodeRowMeta(sl)
		off := len(arena)
		arena = append(arena, sl...)
		rows = append(rows, liveRow{pre: pre, parent: parent, data: arena[off:len(arena):len(arena)]})
	}
	// Append can relocate the arena; rebind every slice to the final
	// backing array before the page is cleared.
	off := 0
	for i := range rows {
		rows[i].data = arena[off : off+len(rows[i].data)]
		off += len(rows[i].data)
	}
	if len(rows) < 2 {
		return 0, 0, fmt.Errorf("page %d cannot split with %d rows", id, len(rows))
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pre < rows[j].pre })

	rightID = tb.heapPg.alloc()
	nfi, nb := tb.pool.fetch(spaceHeap, rightID)
	pageInit(nb)
	oldNext := pageNext(b)
	pageInit(b)
	pageSetNext(b, rightID)
	pageSetNext(nb, oldNext)

	h := (len(rows) + 1) / 2
	rightMin = rows[h].pre
	reinsert := func(page uint32, buf []byte, rs []liveRow) error {
		for _, rw := range rs {
			slot, ok := pageInsert(buf, rw.data)
			if !ok {
				return fmt.Errorf("page %d overflow during split rebuild", page)
			}
			r := rid{page: page, slot: uint16(slot)}
			tb.pre.set(treeKey{a: rw.pre}, r)
			tb.kids.set(treeKey{a: rw.parent, b: rw.pre}, r)
		}
		return nil
	}
	if err := reinsert(id, b, rows[:h]); err != nil {
		tb.pool.unpin(nfi, true)
		return 0, 0, err
	}
	if err := reinsert(rightID, nb, rows[h:]); err != nil {
		tb.pool.unpin(nfi, true)
		return 0, 0, err
	}
	tb.pool.unpin(nfi, true)
	return rightID, rightMin, nil
}

func (s *v2store) UpdateNode(oldPre int64, row NodeRow) error {
	tb := s.tbl
	tb.mu.Lock()
	defer tb.mu.Unlock()
	r, ok := tb.pre.get(treeKey{a: oldPre})
	if !ok {
		return NotFoundError(oldPre)
	}
	if row.Pre != oldPre {
		if _, exists := tb.pre.get(treeKey{a: row.Pre}); exists {
			return fmt.Errorf("store: update pre=%d: new pre %d duplicates an existing row", oldPre, row.Pre)
		}
	}
	fi, b := tb.pool.fetch(spaceHeap, r.page)
	sl := pageSlot(b, int(r.slot))
	if sl == nil {
		tb.pool.unpin(fi, false)
		return fmt.Errorf("store: update pre=%d: slot %d/%d is dead (corrupt index)", oldPre, r.page, r.slot)
	}
	_, _, oldParent := decodeRowMeta(sl)
	tb.scratch = encodeRow(tb.scratch[:0], row)
	newRID := r
	if pageUpdate(b, int(r.slot), tb.scratch) {
		// In-place rewrite: the slot position is untouched, which is the
		// property that keeps replicas byte-identical under identical op
		// streams.
		tb.pool.unpin(fi, true)
	} else {
		// The rebuilt row outgrew its slot (only possible when the ring
		// geometry changed): relocate deterministically.
		pageDelete(b, int(r.slot))
		tb.pool.unpin(fi, true)
		var err error
		newRID, err = tb.place(row)
		if err != nil {
			return fmt.Errorf("store: update pre=%d: %w", oldPre, err)
		}
	}
	if row.Pre != oldPre {
		tb.pre.delete(treeKey{a: oldPre})
	}
	tb.pre.set(treeKey{a: row.Pre}, newRID)
	if oldParent != row.Parent || oldPre != row.Pre {
		tb.kids.delete(treeKey{a: oldParent, b: oldPre})
	}
	tb.kids.set(treeKey{a: row.Parent, b: row.Pre}, newRID)
	return nil
}

func (s *v2store) DeleteNode(pre int64) error {
	tb := s.tbl
	tb.mu.Lock()
	defer tb.mu.Unlock()
	r, ok := tb.pre.get(treeKey{a: pre})
	if !ok {
		return NotFoundError(pre)
	}
	fi, b := tb.pool.fetch(spaceHeap, r.page)
	sl := pageSlot(b, int(r.slot))
	if sl == nil {
		tb.pool.unpin(fi, false)
		return fmt.Errorf("store: delete pre=%d: slot %d/%d is dead (corrupt index)", pre, r.page, r.slot)
	}
	_, _, parent := decodeRowMeta(sl)
	pageDelete(b, int(r.slot))
	tb.pool.unpin(fi, true)
	tb.pre.delete(treeKey{a: pre})
	tb.kids.delete(treeKey{a: parent, b: pre})
	tb.rowCount--
	return nil
}

// ---- reads ----

// rowAt decodes the row at r. withPoly copies the blob into *arena (one
// amortized allocation per call chain — page frames are recycled by the
// pool, so blobs must not alias them past the pin).
func (tb *pagedTable) rowAt(b []byte, r rid, withPoly bool, arena *[]byte) (NodeRow, error) {
	sl := pageSlot(b, int(r.slot))
	if sl == nil {
		return NodeRow{}, fmt.Errorf("store: slot %d/%d is dead (corrupt index)", r.page, r.slot)
	}
	row, err := decodeRow(sl)
	if err != nil {
		return NodeRow{}, err
	}
	if !withPoly {
		row.Poly = nil
		return row, nil
	}
	off := len(*arena)
	*arena = append(*arena, row.Poly...)
	row.Poly = (*arena)[off:len(*arena):len(*arena)]
	return row, nil
}

func (s *v2store) Node(pre int64) (NodeRow, error)     { return s.node(pre, true) }
func (s *v2store) NodeMeta(pre int64) (NodeRow, error) { return s.node(pre, false) }

func (s *v2store) node(pre int64, withPoly bool) (NodeRow, error) {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	r, ok := tb.pre.get(treeKey{a: pre})
	if !ok {
		return NodeRow{}, NotFoundError(pre)
	}
	fi, b := tb.pool.fetch(spaceHeap, r.page)
	defer tb.pool.unpin(fi, false)
	var arena []byte
	return tb.rowAt(b, r, withPoly, &arena)
}

func (s *v2store) Root() (NodeRow, error) {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	var roots []rid
	tb.kids.scanFrom(treeKey{a: 0, b: minInt64}, func(k treeKey, r rid) bool {
		if k.a != 0 {
			return false
		}
		roots = append(roots, r)
		return len(roots) < 3
	})
	switch len(roots) {
	case 0:
		return NodeRow{}, fmt.Errorf("store: root: %w", ErrNotFound)
	case 1:
	default:
		return NodeRow{}, fmt.Errorf("store: %d root nodes", len(roots))
	}
	fi, b := tb.pool.fetch(spaceHeap, roots[0].page)
	defer tb.pool.unpin(fi, false)
	var arena []byte
	row, err := tb.rowAt(b, roots[0], true, &arena)
	if err != nil {
		return NodeRow{}, fmt.Errorf("store: root: %w", err)
	}
	return row, nil
}

// fetchRows materializes rows for a RID list in order, reusing the
// pinned page across consecutive same-page RIDs (RID lists from tree
// scans are clustered, so this is ~1 pool fetch per page, not per row).
func (tb *pagedTable) fetchRows(rids []rid, withPoly bool) ([]NodeRow, error) {
	return tb.fetchRowsSized(rids, withPoly, 0)
}

// fetchRowsSized is fetchRows with the total poly byte count known up
// front (0 = unknown): the arena is allocated once at its final size, so
// per-row blob copies are straight memmoves with no growth reallocation.
func (tb *pagedTable) fetchRowsSized(rids []rid, withPoly bool, polyBytes int) ([]NodeRow, error) {
	if len(rids) == 0 {
		return nil, nil
	}
	out := make([]NodeRow, len(rids))
	arena := make([]byte, 0, polyBytes)
	var cur uint32
	fi := -1
	var b []byte
	fail := func(err error) ([]NodeRow, error) {
		tb.pool.unpin(fi, false)
		return nil, err
	}
	// The row decode is open-coded here rather than calling rowAt: this
	// loop is the body of every warm subtree scan, and the per-row call,
	// duplicate slot lookup, and NodeRow copy were its hottest samples.
	for i, r := range rids {
		if r.page != cur || fi < 0 {
			if fi >= 0 {
				tb.pool.unpin(fi, false)
			}
			fi, b = tb.pool.fetch(spaceHeap, r.page)
			cur = r.page
		}
		sl := pageSlot(b, int(r.slot))
		if sl == nil {
			return fail(fmt.Errorf("store: slot %d/%d is dead (corrupt index)", r.page, r.slot))
		}
		if len(sl) < rowHeaderLen {
			return fail(fmt.Errorf("store: short row: %d bytes", len(sl)))
		}
		out[i].Pre, out[i].Post, out[i].Parent = decodeRowMeta(sl)
		if withPoly {
			n := int(binary.LittleEndian.Uint32(sl[rowOffPolyLen:]))
			if n > len(sl)-rowHeaderLen {
				return fail(fmt.Errorf("store: row poly length %d exceeds slot (%d bytes)", n, len(sl)))
			}
			off := len(arena)
			arena = append(arena, sl[rowHeaderLen:rowHeaderLen+n]...)
			out[i].Poly = arena[off:len(arena):len(arena)]
		}
	}
	tb.pool.unpin(fi, false)
	return out, nil
}

func (s *v2store) Children(pre int64) ([]NodeRow, error)     { return s.children(pre, true) }
func (s *v2store) ChildrenMeta(pre int64) ([]NodeRow, error) { return s.children(pre, false) }

func (s *v2store) children(pre int64, withPoly bool) ([]NodeRow, error) {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	var rids []rid
	tb.kids.scanFrom(treeKey{a: pre, b: minInt64}, func(k treeKey, r rid) bool {
		if k.a != pre {
			return false
		}
		rids = append(rids, r)
		return true
	})
	rows, err := tb.fetchRows(rids, withPoly)
	if err != nil {
		return nil, fmt.Errorf("store: children of %d: %w", pre, err)
	}
	return rows, nil
}

// scanDesc streams the proper descendants of (pre, post) in document
// order: a tree descent to the first key past pre, then leaf-chain
// entries decoded straight off pinned heap pages until the first row
// whose post exceeds post — the subtree boundary, discovered as the
// scan's own stop condition instead of a separate probe.
func (tb *pagedTable) scanDesc(pre, post int64, fn func(sl []byte, r rid) error) error {
	var cur uint32
	fi := -1
	var pb []byte
	var err error
	tb.pre.scanFrom(treeKey{a: pre + 1, b: minInt64}, func(_ treeKey, r rid) bool {
		if r.page != cur || fi < 0 {
			if fi >= 0 {
				tb.pool.unpin(fi, false)
			}
			fi, pb = tb.pool.fetch(spaceHeap, r.page)
			cur = r.page
		}
		sl := pageSlot(pb, int(r.slot))
		if sl == nil {
			err = fmt.Errorf("slot %d/%d is dead (corrupt index)", r.page, r.slot)
			return false
		}
		if rowPost := int64(binary.LittleEndian.Uint64(sl[rowOffPost:])); rowPost > post {
			return false // first non-descendant: the boundary
		}
		err = fn(sl, r)
		return err == nil
	})
	if fi >= 0 {
		tb.pool.unpin(fi, false)
	}
	return err
}

func (s *v2store) Descendants(pre, post int64) ([]NodeRow, error) {
	return s.descendants(pre, post, true)
}

func (s *v2store) DescendantsMeta(pre, post int64) ([]NodeRow, error) {
	return s.descendants(pre, post, false)
}

func (s *v2store) descendants(pre, post int64, withPoly bool) ([]NodeRow, error) {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	// Two passes: the first walks slot headers only, collecting RIDs (a
	// pointer-free 8-byte scratch — doubling it is a flat memmove) and
	// the total poly byte count, so the second can fill exact-capacity
	// result and arena slices — append growth would otherwise recopy
	// the arena O(log n) times and dominate large warm scans.
	var rids []rid
	var polyBytes int
	err := tb.scanDesc(pre, post, func(sl []byte, r rid) error {
		if withPoly {
			polyBytes += int(binary.LittleEndian.Uint32(sl[rowOffPolyLen:]))
		}
		rids = append(rids, r)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: descendants of %d: %w", pre, err)
	}
	out, err := tb.fetchRowsSized(rids, withPoly, polyBytes)
	if err != nil {
		return nil, fmt.Errorf("store: descendants of %d: %w", pre, err)
	}
	return out, nil
}

func (s *v2store) VisitDescendantsMeta(pre, post int64, fn func(pre, post, parent int64)) error {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	err := tb.scanDesc(pre, post, func(sl []byte, _ rid) error {
		p, po, pa := decodeRowMeta(sl)
		fn(p, po, pa)
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: descendants of %d: %w", pre, err)
	}
	return nil
}

func (s *v2store) DescendantsNaive(pre, post int64) ([]NodeRow, error) {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	// The unoptimized shape: a full forward scan with a post filter and
	// no boundary stop (kept for the ablation benchmark).
	var rids []rid
	var cur uint32
	fi := -1
	var pb []byte
	var scanErr error
	tb.pre.scanFrom(treeKey{a: pre + 1, b: minInt64}, func(_ treeKey, r rid) bool {
		if r.page != cur || fi < 0 {
			if fi >= 0 {
				tb.pool.unpin(fi, false)
			}
			fi, pb = tb.pool.fetch(spaceHeap, r.page)
			cur = r.page
		}
		sl := pageSlot(pb, int(r.slot))
		if sl == nil {
			scanErr = fmt.Errorf("slot %d/%d is dead (corrupt index)", r.page, r.slot)
			return false
		}
		_, rowPost, _ := decodeRowMeta(sl)
		if rowPost < post {
			rids = append(rids, r)
		}
		return true
	})
	if fi >= 0 {
		tb.pool.unpin(fi, false)
	}
	if scanErr != nil {
		return nil, fmt.Errorf("store: naive descendants of %d: %w", pre, scanErr)
	}
	rows, err := tb.fetchRows(rids, true)
	if err != nil {
		return nil, fmt.Errorf("store: naive descendants of %d: %w", pre, err)
	}
	return rows, nil
}

func (s *v2store) Range(lo, hi int64) ([]NodeRow, error) {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	var rids []rid
	tb.pre.scanFrom(treeKey{a: lo, b: minInt64}, func(k treeKey, r rid) bool {
		if k.a > hi {
			return false
		}
		rids = append(rids, r)
		return true
	})
	rows, err := tb.fetchRows(rids, true)
	if err != nil {
		return nil, fmt.Errorf("store: range [%d, %d]: %w", lo, hi, err)
	}
	return rows, nil
}

func (s *v2store) MinMaxPre() (int64, int64, error) {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	lo, _, ok := tb.pre.min()
	if !ok {
		return 0, 0, fmt.Errorf("store: min/max pre of empty table: %w", ErrNotFound)
	}
	hi, _, _ := tb.pre.max()
	return lo.a, hi.a, nil
}

func (s *v2store) Count() (int64, error) {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	return tb.rowCount, nil
}

func (s *v2store) ChildCount(pre int64) (int64, error) {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	var n int64
	tb.kids.scanFrom(treeKey{a: pre, b: minInt64}, func(k treeKey, _ rid) bool {
		if k.a != pre {
			return false
		}
		n++
		return true
	})
	return n, nil
}
