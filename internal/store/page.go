package store

import "encoding/binary"

// Slotted heap page of the v2 engine. Every page is pageSize bytes:
//
//	[ 0: 1)  type byte ('H' heap)
//	[ 1: 2)  flags (unused)
//	[ 2: 4)  nslots  uint16  slots ever allocated (dead ones included)
//	[ 4: 6)  upper   uint16  offset where row payload begins
//	[ 6: 8)  live    uint16  slots currently holding a row
//	[ 8:12)  next    uint32  next heap page in pre order (0 = none)
//	[12:16)  reserved
//	[16: . ) slot array, 4 bytes per slot, growing up
//	[ . :up) free space
//	[up:end) row payload, growing down from the page end
//
// A slot is (offset uint16, length uint16); offset 0 marks a dead slot
// (no row can start inside the header). Slot indices are stable for the
// lifetime of a row on the page: insert always appends a new slot,
// update rewrites in place, delete leaves a dead slot behind. Only a
// page split (heap.go) rebuilds the slot array — and fixes the B⁺-tree
// RIDs of every row it moves. That stability is what keeps two replicas
// applying the same op sequence byte-identical on Dump.
const (
	pageSize     = 8192
	pageHdrLen   = 16
	pageTypeHeap = 'H'

	pageOffNSlots = 2
	pageOffUpper  = 4
	pageOffLive   = 6
	pageOffNext   = 8

	slotLen = 4
)

// maxRowBytes is the largest encoded row one fresh page can hold.
const maxRowBytes = pageSize - pageHdrLen - slotLen

func pageInit(p []byte) {
	clear(p)
	p[0] = pageTypeHeap
	binary.LittleEndian.PutUint16(p[pageOffUpper:], pageSize)
}

func pageNSlots(p []byte) int {
	return int(binary.LittleEndian.Uint16(p[pageOffNSlots:]))
}

func pageLive(p []byte) int {
	return int(binary.LittleEndian.Uint16(p[pageOffLive:]))
}

func pageNext(p []byte) uint32 {
	return binary.LittleEndian.Uint32(p[pageOffNext:])
}

func pageSetNext(p []byte, next uint32) {
	binary.LittleEndian.PutUint32(p[pageOffNext:], next)
}

func pageUpper(p []byte) int {
	return int(binary.LittleEndian.Uint16(p[pageOffUpper:]))
}

// pageFree returns the bytes a fresh insert can claim (slot entry
// included).
func pageFree(p []byte) int {
	return pageUpper(p) - pageHdrLen - slotLen*pageNSlots(p)
}

func slotAt(p []byte, i int) (off, length int) {
	base := pageHdrLen + slotLen*i
	return int(binary.LittleEndian.Uint16(p[base:])),
		int(binary.LittleEndian.Uint16(p[base+2:]))
}

func setSlot(p []byte, i, off, length int) {
	base := pageHdrLen + slotLen*i
	binary.LittleEndian.PutUint16(p[base:], uint16(off))
	binary.LittleEndian.PutUint16(p[base+2:], uint16(length))
}

// pageSlot returns the payload of slot i, or nil when the slot is dead
// or out of range.
func pageSlot(p []byte, i int) []byte {
	if i < 0 || i >= pageNSlots(p) {
		return nil
	}
	off, length := slotAt(p, i)
	if off == 0 {
		return nil
	}
	return p[off : off+length]
}

// pageInsert appends row bytes into a new slot and returns its index;
// ok is false when the page lacks room (slot entry + payload).
func pageInsert(p []byte, row []byte) (slot int, ok bool) {
	if pageFree(p) < slotLen+len(row) {
		return 0, false
	}
	n := pageNSlots(p)
	up := pageUpper(p) - len(row)
	copy(p[up:], row)
	setSlot(p, n, up, len(row))
	binary.LittleEndian.PutUint16(p[pageOffNSlots:], uint16(n+1))
	binary.LittleEndian.PutUint16(p[pageOffUpper:], uint16(up))
	binary.LittleEndian.PutUint16(p[pageOffLive:], uint16(pageLive(p)+1))
	return n, true
}

// pageUpdate rewrites slot i in place. ok is false when the new row does
// not fit the slot's allocated extent (the caller then deletes and
// re-inserts) or the slot is dead. The slot's allocated length never
// shrinks — the row's own length prefix bounds the content.
func pageUpdate(p []byte, i int, row []byte) bool {
	if i < 0 || i >= pageNSlots(p) {
		return false
	}
	off, length := slotAt(p, i)
	if off == 0 || len(row) > length {
		return false
	}
	copy(p[off:off+len(row)], row)
	return true
}

// pageDelete kills slot i. The payload bytes stay where they were (a
// deterministic residue); space is reclaimed only by a split rebuild.
func pageDelete(p []byte, i int) bool {
	if i < 0 || i >= pageNSlots(p) {
		return false
	}
	off, _ := slotAt(p, i)
	if off == 0 {
		return false
	}
	setSlot(p, i, 0, 0)
	binary.LittleEndian.PutUint16(p[pageOffLive:], uint16(pageLive(p)-1))
	return true
}
