package store

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"encshare/internal/minisql"
)

// v2 dump format: a 40-byte header followed by the raw heap page images
// in page-ID order. Index pages are NOT dumped — the B⁺-trees are
// rebuilt on load — so Dump byte-determinism is a property of the heap
// pages alone, which insert/update/delete keep deterministic (stable
// slots, deterministic splits).
//
//	[ 0:16) magic "encshare-pagesv2"
//	[16:20) version  uint32 = 1
//	[20:24) pageSize uint32
//	[24:28) nPages   uint32
//	[28:32) firstHeap uint32
//	[32:40) rowCount uint64
//	then nPages × pageSize bytes, pages 1..nPages
//
// Store.Load sniffs the first 16 bytes, so either engine loads either
// format: a v2 server attaches v1 gob files and vice versa (the
// -engine v1 oracle legs in CI rely on this).
const (
	v2Magic     = "encshare-pagesv2"
	v2Version   = 1
	v2HeaderLen = 40
)

func (s *v2store) Dump(w io.Writer) error {
	tb := s.tbl
	tb.mu.RLock()
	defer tb.mu.RUnlock()
	tb.pool.flush(spaceHeap)
	var hdr [v2HeaderLen]byte
	copy(hdr[:16], v2Magic)
	binary.LittleEndian.PutUint32(hdr[16:], v2Version)
	binary.LittleEndian.PutUint32(hdr[20:], pageSize)
	binary.LittleEndian.PutUint32(hdr[24:], uint32(tb.heapPg.count()))
	binary.LittleEndian.PutUint32(hdr[28:], tb.firstHeap)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(tb.rowCount))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: dump: %w", err)
	}
	for _, p := range tb.heapPg.pages {
		if _, err := w.Write(p); err != nil {
			return fmt.Errorf("store: dump: %w", err)
		}
	}
	return nil
}

// reset clears the table back to empty (fresh pagers, pool, trees),
// preserving the pool capacity. Callers hold mu.
func (tb *pagedTable) reset() {
	capPages := tb.pool.cap
	tb.heapPg = &pager{}
	tb.idxPg = &pager{}
	tb.pool = newBufferPool(capPages, tb.heapPg, tb.idxPg)
	tb.pre = newBptree(tb.pool, tb.idxPg)
	tb.kids = newBptree(tb.pool, tb.idxPg)
	tb.firstHeap = 0
	tb.rowCount = 0
	tb.created = true
}

// readV2Header validates the stream header and returns its fields.
func readV2Header(r io.Reader) (nPages, firstHeap uint32, rowCount int64, err error) {
	var hdr [v2HeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, fmt.Errorf("store: load: %w", err)
	}
	if string(hdr[:16]) != v2Magic {
		return 0, 0, 0, fmt.Errorf("store: load: not a v2 page file")
	}
	if v := binary.LittleEndian.Uint32(hdr[16:]); v != v2Version {
		return 0, 0, 0, fmt.Errorf("store: load: v2 dump version %d (want %d)", v, v2Version)
	}
	if ps := binary.LittleEndian.Uint32(hdr[20:]); ps != pageSize {
		return 0, 0, 0, fmt.Errorf("store: load: dump page size %d (want %d)", ps, pageSize)
	}
	nPages = binary.LittleEndian.Uint32(hdr[24:])
	firstHeap = binary.LittleEndian.Uint32(hdr[28:])
	rowCount = int64(binary.LittleEndian.Uint64(hdr[32:]))
	return nPages, firstHeap, rowCount, nil
}

// loadNative restores a v2 dump exactly: page images are adopted
// verbatim (so dump→load→dump is the identity) and the trees are
// rebuilt from the live slots.
func (s *v2store) loadNative(r io.Reader) error {
	tb := s.tbl
	tb.mu.Lock()
	defer tb.mu.Unlock()
	nPages, firstHeap, rowCount, err := readV2Header(r)
	if err != nil {
		return err
	}
	tb.reset()
	tb.firstHeap = firstHeap
	type entry struct {
		pre, parent int64
		r           rid
	}
	var entries []entry
	for id := uint32(1); id <= nPages; id++ {
		if got := tb.heapPg.alloc(); got != id {
			return fmt.Errorf("store: load: page id drift (%d != %d)", got, id)
		}
		p := tb.heapPg.pages[id-1]
		if _, err := io.ReadFull(r, p); err != nil {
			return fmt.Errorf("store: load: page %d: %w", id, err)
		}
		if p[0] != pageTypeHeap {
			return fmt.Errorf("store: load: page %d has type %q", id, p[0])
		}
		for i := 0; i < pageNSlots(p); i++ {
			sl := pageSlot(p, i)
			if sl == nil {
				continue
			}
			if len(sl) < rowHeaderLen {
				return fmt.Errorf("store: load: page %d slot %d truncated", id, i)
			}
			pre, _, parent := decodeRowMeta(sl)
			entries = append(entries, entry{pre: pre, parent: parent, r: rid{page: id, slot: uint16(i)}})
		}
	}
	if int64(len(entries)) != rowCount {
		return fmt.Errorf("store: load: %d live rows but header says %d", len(entries), rowCount)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].pre < entries[j].pre })
	for _, e := range entries {
		if tb.pre.set(treeKey{a: e.pre}, e.r) {
			return fmt.Errorf("store: load: duplicate pre %d", e.pre)
		}
		tb.kids.set(treeKey{a: e.parent, b: e.pre}, e.r)
	}
	tb.rowCount = rowCount
	return nil
}

// loadRows replaces the table contents with rows (pre-sorted by the
// caller) through the normal placement path — the cross-format load.
func (s *v2store) loadRows(rows []NodeRow) error {
	tb := s.tbl
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.reset()
	for _, row := range rows {
		r, err := tb.place(row)
		if err != nil {
			return fmt.Errorf("store: load: insert pre=%d: %w", row.Pre, err)
		}
		if tb.pre.set(treeKey{a: row.Pre}, r) {
			return fmt.Errorf("store: load: duplicate pre %d", row.Pre)
		}
		tb.kids.set(treeKey{a: row.Parent, b: row.Pre}, r)
		tb.rowCount++
	}
	return nil
}

// readV2Rows extracts the rows of a v2 dump stream, sorted by pre, for
// loading into a v1 engine. Poly slices are private copies.
func readV2Rows(r io.Reader) ([]NodeRow, error) {
	nPages, _, rowCount, err := readV2Header(r)
	if err != nil {
		return nil, err
	}
	var rows []NodeRow
	p := make([]byte, pageSize)
	for id := uint32(1); id <= nPages; id++ {
		if _, err := io.ReadFull(r, p); err != nil {
			return nil, fmt.Errorf("store: load: page %d: %w", id, err)
		}
		if p[0] != pageTypeHeap {
			return nil, fmt.Errorf("store: load: page %d has type %q", id, p[0])
		}
		for i := 0; i < pageNSlots(p); i++ {
			sl := pageSlot(p, i)
			if sl == nil {
				continue
			}
			row, err := decodeRow(sl)
			if err != nil {
				return nil, fmt.Errorf("store: load: page %d slot %d: %w", id, i, err)
			}
			row.Poly = append([]byte(nil), row.Poly...)
			rows = append(rows, row)
		}
	}
	if int64(len(rows)) != rowCount {
		return nil, fmt.Errorf("store: load: %d live rows but header says %d", len(rows), rowCount)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Pre < rows[j].Pre })
	return rows, nil
}

// readV1Rows extracts the rows of a minisql gob dump, sorted by pre,
// for loading into a v2 engine.
func readV1Rows(r io.Reader) ([]NodeRow, error) {
	db := minisql.NewDB()
	if err := db.Load(r); err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	q, err := db.Prepare("SELECT pre, post, parent, poly FROM nodes ORDER BY pre")
	if err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	_, vals, err := q.Query()
	if err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	return rowsFromValues(vals, true)
}
