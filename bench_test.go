// Top-level benchmarks: one per table/figure of the paper's evaluation
// (§6), delegating to the internal/experiment harness. Run with
//
//	go test -bench=. -benchmem
//
// Shapes to expect (cf. EXPERIMENTS.md): Fig4 encoding scales linearly;
// Fig5 advanced ≥ simple by a constant factor on chain queries; Fig6
// advanced beats simple on all five // queries; Fig7 containment accuracy
// drops with each //.
package encshare_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"encshare/internal/engine"
	"encshare/internal/experiment"
	"encshare/internal/filter"
	"encshare/internal/rmi"
	"encshare/internal/xpath"
)

// benchEnv caches one encrypted XMark database per scale across
// benchmarks (building it is expensive and not what we measure).
var (
	benchEnvMu sync.Mutex
	benchEnvs  = map[float64]*experiment.Env{}
)

func getEnv(b *testing.B, scale float64) *experiment.Env {
	b.Helper()
	benchEnvMu.Lock()
	defer benchEnvMu.Unlock()
	if env, ok := benchEnvs[scale]; ok {
		return env
	}
	env, err := experiment.NewEnv(scale, 42)
	if err != nil {
		b.Fatal(err)
	}
	benchEnvs[scale] = env
	return env
}

// BenchmarkFig4Encoding regenerates Fig. 4: full encode pipeline (XMark
// generation excluded) at three input sizes; b.SetBytes reports
// throughput against the input XML size.
func BenchmarkFig4Encoding(b *testing.B) {
	for _, scale := range []float64{0.25, 0.5, 1.0} {
		b.Run(fmt.Sprintf("scale=%.2f", scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				t, err := experiment.Encoding([]float64{scale}, 42)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 && testing.Verbose() {
					t.Fprint(io.Discard)
				}
			}
		})
	}
}

// BenchmarkFig5QueryLength regenerates Fig. 5 / Table 1: each sub-bench
// is one (engine, query-length) point of the plot; ns/op is the engine
// runtime, and the evaluation counts are reported as custom metrics.
func BenchmarkFig5QueryLength(b *testing.B) {
	env := getEnv(b, 0.1)
	for i, qs := range experiment.Table1Queries {
		q := xpath.MustParse(qs)
		for _, eng := range []engine.Engine{env.Simple, env.Advanced} {
			b.Run(fmt.Sprintf("len=%d/%s", i+1, eng.Name()), func(b *testing.B) {
				var evals int64
				for n := 0; n < b.N; n++ {
					res, err := eng.Run(q, engine.Containment)
					if err != nil {
						b.Fatal(err)
					}
					evals = res.Stats.Evaluations
				}
				b.ReportMetric(float64(evals), "evals")
			})
		}
	}
}

// BenchmarkFig6Strictness regenerates Fig. 6 / Table 2: the four
// (engine, test) configurations on the five queries; ns/op is the
// execution time the paper plots.
func BenchmarkFig6Strictness(b *testing.B) {
	env := getEnv(b, 0.1)
	combos := []struct {
		name string
		eng  engine.Engine
		test engine.Test
	}{
		{"non-strict/simple", env.Simple, engine.Containment},
		{"strict/simple", env.Simple, engine.Equality},
		{"non-strict/advanced", env.Advanced, engine.Containment},
		{"strict/advanced", env.Advanced, engine.Equality},
	}
	for i, qs := range experiment.Table2Queries {
		q := xpath.MustParse(qs)
		for _, c := range combos {
			b.Run(fmt.Sprintf("q%d/%s", i+1, c.name), func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					if _, err := c.eng.Run(q, c.test); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig7Accuracy regenerates Fig. 7: the E/C accuracy ratio per
// Table 2 query, reported as a custom metric.
func BenchmarkFig7Accuracy(b *testing.B) {
	env := getEnv(b, 0.1)
	for i, qs := range experiment.Table2Queries {
		q := xpath.MustParse(qs)
		b.Run(fmt.Sprintf("q%d", i+1), func(b *testing.B) {
			var acc float64
			for n := 0; n < b.N; n++ {
				eq, err := env.Simple.Run(q, engine.Equality)
				if err != nil {
					b.Fatal(err)
				}
				co, err := env.Simple.Run(q, engine.Containment)
				if err != nil {
					b.Fatal(err)
				}
				if len(co.Pres) > 0 {
					acc = 100 * float64(len(eq.Pres)) / float64(len(co.Pres))
				} else {
					acc = 100
				}
			}
			b.ReportMetric(acc, "accuracy%")
		})
	}
}

// BenchmarkTrieStorage regenerates the §4 storage-claims table.
func BenchmarkTrieStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.TrieStorage(42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDescendants measures the boundary-scan optimization.
func BenchmarkAblationDescendants(b *testing.B) {
	env := getEnv(b, 0.1)
	root, err := env.Store.Root()
	if err != nil {
		b.Fatal(err)
	}
	kids, err := env.Store.Children(root.Pre)
	if err != nil {
		b.Fatal(err)
	}
	target := kids[1] // a mid-size subtree (categories)
	b.Run("boundary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.Store.Descendants(target.Pre, target.Post); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := env.Store.DescendantsNaive(target.Pre, target.Post); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRemoteRoundTrips compares the batched pipeline against the
// paper's per-call protocol over the actual RMI transport: ns/op is the
// query latency and the rtts/op metric is the number of server
// exchanges — the quantity the batch pipeline collapses from
// O(candidates) to O(steps).
func BenchmarkRemoteRoundTrips(b *testing.B) {
	env := getEnv(b, 0.1)
	srv := rmi.NewServer()
	filter.RegisterServer(srv, filter.NewServerFilter(env.Store, env.Ring, 4096))
	cli := rmi.Pipe(srv)
	defer cli.Close()
	rem := filter.NewRemote(cli)
	fcli := filter.NewClient(rem, env.Scheme)

	combos := []struct {
		name string
		eng  engine.Engine
	}{
		{"batched/simple", engine.NewSimple(fcli, env.Map)},
		{"percall/simple", engine.NewSimpleSequential(fcli, env.Map)},
		{"batched/advanced", engine.NewAdvanced(fcli, env.Map)},
		{"percall/advanced", engine.NewAdvancedSequential(fcli, env.Map)},
	}
	q := xpath.MustParse("/site//europe/item")
	for _, c := range combos {
		b.Run(c.name, func(b *testing.B) {
			start := rem.RoundTrips()
			for n := 0; n < b.N; n++ {
				if _, err := c.eng.Run(q, engine.Containment); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rem.RoundTrips()-start)/float64(b.N), "rtts/op")
		})
	}
}

// BenchmarkXMarkQueryCPU is the compute-bound end-to-end benchmark: a
// full XMark query through an in-process (network-free) session, so
// ns/op is pure client+server compute — share decoding, client-share
// regeneration, and polynomial evaluation — with no transport in the
// way. This is the headline number of the hot-path compute engine work.
func BenchmarkXMarkQueryCPU(b *testing.B) {
	env := getEnv(b, 0.1)
	q := xpath.MustParse("/site//europe/item")
	combos := []struct {
		name string
		test engine.Test
	}{
		{"nonstrict", engine.Containment},
		{"strict", engine.Equality},
	}
	for _, c := range combos {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := env.Advanced.Run(q, c.test); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEndToEndQuery measures the public API round-trip (local
// session, default options) — the number a downstream user would see.
func BenchmarkEndToEndQuery(b *testing.B) {
	env := getEnv(b, 0.1)
	q := xpath.MustParse("/site//europe/item")
	for i := 0; i < b.N; i++ {
		if _, err := env.Advanced.Run(q, engine.Equality); err != nil {
			b.Fatal(err)
		}
	}
}
