package encshare

import (
	"bytes"
	"math/rand"
	"net"
	"strings"
	"testing"

	"encshare/internal/minisql"
	"encshare/internal/xmldoc"
)

const testXML = `<site><regions><europe><item><name>lamp</name></item></europe></regions><people><person><name>Joan Johnson</name><address><city>Enschede</city></address></person></people></site>`

func testNames(t *testing.T) []string {
	t.Helper()
	d, err := xmldoc.ParseString(testXML)
	if err != nil {
		t.Fatal(err)
	}
	return d.Names()
}

func TestEndToEndLocal(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	dsn := minisql.FreshDSN()
	db, err := CreateDatabase(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	stats, err := db.EncodeXML(keys, strings.NewReader(testXML))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 10 {
		t.Fatalf("encoded %d nodes", stats.Nodes)
	}
	n, err := db.NodeCount()
	if err != nil || n != 10 {
		t.Fatalf("NodeCount = %d, %v", n, err)
	}

	session := OpenLocal(keys, db)
	defer session.Close()
	for q, want := range map[string]int{
		"/site":                1,
		"//item":               1,
		"/site//city":          1,
		"/site/*/person":       1,
		"//zzz-not-there":      0,
		"/site/regions/europe": 1,
	} {
		res, err := session.Query(q)
		if err != nil {
			t.Fatalf("Query(%s): %v", q, err)
		}
		if len(res.Pres) != want {
			t.Errorf("Query(%s) = %v, want %d nodes", q, res.Pres, want)
		}
	}
	// Options: both engines, both tests. Exact returns just the city
	// node; containment over-approximates with its ancestors (site,
	// people, person, address) — the Fig. 7 accuracy trade-off.
	for _, opt := range []QueryOptions{
		{Engine: Simple}, {Engine: Advanced},
		{Engine: Simple, Test: TestContainment}, {Engine: Advanced, Test: TestContainment},
	} {
		res, err := session.QueryWith("//city", opt)
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		if opt.Test == TestContainment {
			want = 5
		}
		if len(res.Pres) != want {
			t.Errorf("%+v: //city = %v, want %d nodes", opt, res.Pres, want)
		}
		if res.Stats.Evaluations+res.Stats.Reconstructions == 0 {
			t.Errorf("%+v: no work counted", opt)
		}
	}
}

func TestEndToEndRemote(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	dsn := minisql.FreshDSN()
	db, err := CreateDatabase(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(testXML)); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go db.Serve(l, keys.Params())
	defer l.Close()

	session, err := Dial(keys, l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	res, err := session.Query("/site//city")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pres) != 1 {
		t.Fatalf("remote //city = %v", res.Pres)
	}

	// The same query under both wire protocols: identical answers, and
	// the batched default costs strictly fewer server exchanges.
	for _, opt := range []QueryOptions{{Engine: Simple}, {Engine: Advanced}} {
		batchedOpt, percallOpt := opt, opt
		percallOpt.Batch = PerCall
		before := session.RoundTrips()
		br, err := session.QueryWith("/site//city", batchedOpt)
		if err != nil {
			t.Fatal(err)
		}
		batched := session.RoundTrips() - before
		before = session.RoundTrips()
		pr, err := session.QueryWith("/site//city", percallOpt)
		if err != nil {
			t.Fatal(err)
		}
		percall := session.RoundTrips() - before
		if len(br.Pres) != 1 || len(pr.Pres) != 1 {
			t.Fatalf("%+v: batched %v, per-call %v", opt, br.Pres, pr.Pres)
		}
		if batched >= percall {
			t.Errorf("%+v: batched cost %d round-trips, per-call %d", opt, batched, percall)
		}
	}
}

// TestEndToEndCluster exercises the whole sharded deployment through
// the public API: ShardPlan/DumpShard cut the table into three loadable
// shard files, three servers serve them over TCP, and DialCluster runs
// the same queries with identical results, counters, and per-shard
// round-trip accounting.
func TestEndToEndCluster(t *testing.T) {
	xml := randomDocXML(rand.New(rand.NewSource(21)), 400)
	doc, _ := xmldoc.ParseString(xml)
	keys, err := GenerateKeys(Params{P: 83}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}

	plan, err := db.ShardPlan(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("ShardPlan(3) = %d ranges", len(plan))
	}
	var addrs []string
	for _, r := range plan {
		var dump bytes.Buffer
		if err := db.DumpShard(&dump, r); err != nil {
			t.Fatal(err)
		}
		shardDB, err := CreateDatabase(minisql.FreshDSN())
		if err != nil {
			t.Fatal(err)
		}
		defer shardDB.Close()
		if err := shardDB.LoadFrom(&dump); err != nil {
			t.Fatal(err)
		}
		want := r.Hi - r.Lo + 1
		if n, err := shardDB.NodeCount(); err != nil || n != want {
			t.Fatalf("shard [%d, %d] holds %d nodes (%v), want %d", r.Lo, r.Hi, n, err, want)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go shardDB.Serve(l, keys.Params())
		addrs = append(addrs, l.Addr().String())
	}

	session, err := DialCluster(keys, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer session.Close()
	if session.Shards() != 3 {
		t.Fatalf("Shards() = %d", session.Shards())
	}
	local := OpenLocal(keys, db)
	for _, qs := range []string{"/site", "//item", "//person//city", "//bidder/date", "/site/*/person"} {
		for _, opt := range []QueryOptions{
			{}, {Engine: Simple}, {Test: TestContainment}, {Batch: PerCall},
		} {
			want, err := local.QueryWith(qs, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := session.QueryWith(qs, opt)
			if err != nil {
				t.Fatalf("%s %+v over cluster: %v", qs, opt, err)
			}
			if len(got.Pres) != len(want.Pres) {
				t.Fatalf("%s %+v: cluster %v != local %v", qs, opt, got.Pres, want.Pres)
			}
			for i := range want.Pres {
				if got.Pres[i] != want.Pres[i] {
					t.Fatalf("%s %+v: cluster %v != local %v", qs, opt, got.Pres, want.Pres)
				}
			}
			if got.Stats.Evaluations != want.Stats.Evaluations ||
				got.Stats.Reconstructions != want.Stats.Reconstructions {
				t.Fatalf("%s %+v: cluster work %+v != local %+v", qs, opt, got.Stats, want.Stats)
			}
		}
	}
	per := session.ShardRoundTrips()
	if len(per) != 3 {
		t.Fatalf("ShardRoundTrips = %v", per)
	}
	var sum int64
	for _, n := range per {
		sum += n
	}
	if sum == 0 || sum != session.RoundTrips() {
		t.Fatalf("per-shard counters %v do not aggregate to %d", per, session.RoundTrips())
	}

	// A dead shard address fails the dial with an error naming it.
	if _, err := DialCluster(keys, []string{addrs[0], "127.0.0.1:1"}); err == nil ||
		!strings.Contains(err.Error(), "shard 1 (127.0.0.1:1)") {
		t.Fatalf("dead shard dial gave %v, want a shard-identifying error", err)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	names := testNames(t)
	keys, err := GenerateKeys(Params{P: 83}, names)
	if err != nil {
		t.Fatal(err)
	}
	var mapFile bytes.Buffer
	if err := keys.SaveMap(&mapFile); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadKeys(Params{P: 83}, keys.Seed(), &mapFile)
	if err != nil {
		t.Fatal(err)
	}

	// A database encoded with the original keys must answer queries under
	// the restored keys.
	dsn := minisql.FreshDSN()
	db, err := CreateDatabase(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(testXML)); err != nil {
		t.Fatal(err)
	}
	session := OpenLocal(restored, db)
	res, err := session.Query("//person")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pres) != 1 {
		t.Fatalf("restored keys: //person = %v", res.Pres)
	}
}

func TestWrongKeysGarbleQueries(t *testing.T) {
	names := testNames(t)
	right, err := GenerateKeys(Params{P: 83}, names)
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := GenerateKeys(Params{P: 83}, names)
	if err != nil {
		t.Fatal(err)
	}
	dsn := minisql.FreshDSN()
	db, err := CreateDatabase(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(right, strings.NewReader(testXML)); err != nil {
		t.Fatal(err)
	}
	session := OpenLocal(wrong, db)
	res, err := session.Query("/site")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pres) != 0 {
		t.Fatalf("wrong seed still matched: %v", res.Pres)
	}
}

func TestTrieContentSearchPublicAPI(t *testing.T) {
	d, err := xmldoc.ParseString(testXML)
	if err != nil {
		t.Fatal(err)
	}
	var corpus strings.Builder
	d.Walk(func(n *xmldoc.Node) bool {
		corpus.WriteString(n.Text + " ")
		return true
	})
	names := ContentNames(d.Names(), corpus.String())
	keys, err := GenerateKeys(Params{P: 83, TrieMode: TrieCompressed}, names)
	if err != nil {
		t.Fatal(err)
	}
	dsn := minisql.FreshDSN()
	db, err := CreateDatabase(dsn)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(testXML)); err != nil {
		t.Fatal(err)
	}
	session := OpenLocal(keys, db)
	res, err := session.QueryWith(`/site//person[contains(text(),"Joan")]`, QueryOptions{Test: TestExact})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pres) != 1 {
		t.Fatalf("content search = %v", res.Pres)
	}
	res, err = session.QueryWith(`/site//person[contains(text(),"Zelda")]`, QueryOptions{Test: TestExact})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pres) != 0 {
		t.Fatalf("absent word matched: %v", res.Pres)
	}
}

func TestDumpLoadAcrossDatabases(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db1, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	defer db1.Close()
	if _, err := db1.EncodeXML(keys, strings.NewReader(testXML)); err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	if err := db1.DumpTo(&dump); err != nil {
		t.Fatal(err)
	}

	db2, err := OpenDatabase(minisql.FreshDSN())
	if err == nil {
		// Attach on an empty database fails to prepare; expect error path
		// to be exercised via LoadFrom instead.
		defer db2.Close()
	}
	db3, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	if err := db3.LoadFrom(&dump); err != nil {
		t.Fatal(err)
	}
	session := OpenLocal(keys, db3)
	res, err := session.Query("//item")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pres) != 1 {
		t.Fatalf("after dump/load: //item = %v", res.Pres)
	}
}

func TestBadParams(t *testing.T) {
	if _, err := GenerateKeys(Params{P: 6}, []string{"a"}); err == nil {
		t.Fatal("composite P accepted")
	}
	if _, err := LoadKeys(Params{P: 83}, nil, strings.NewReader("a = 1")); err == nil {
		t.Fatal("empty seed accepted")
	}
	if _, err := GenerateKeys(Params{P: 3}, []string{"a", "b", "c"}); err == nil {
		t.Fatal("map overflow accepted")
	}
}

func TestBadQuerySyntax(t *testing.T) {
	keys, err := GenerateKeys(Params{P: 83}, testNames(t))
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.EncodeXML(keys, strings.NewReader(testXML)); err != nil {
		t.Fatal(err)
	}
	session := OpenLocal(keys, db)
	if _, err := session.Query("not-a-query"); err == nil {
		t.Fatal("bad query accepted")
	}
}
