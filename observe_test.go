package encshare

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"encshare/internal/minisql"
	"encshare/internal/obs"
	"encshare/internal/server"
	"encshare/internal/xmldoc"
)

// tracedCluster builds a shards×replicas TCP deployment of one
// database and returns a dialed session plus the source database for
// answer checking. Cleanup runs via t.Cleanup.
func tracedCluster(t *testing.T, shards, replicas int) (*Session, *Session) {
	t.Helper()
	xml := randomDocXML(rand.New(rand.NewSource(77)), 400)
	doc, _ := xmldoc.ParseString(xml)
	keys, err := GenerateKeys(Params{P: 83}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}
	plan, err := db.ShardPlan(shards)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	for _, r := range plan {
		var dump bytes.Buffer
		if err := db.DumpShard(&dump, r); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < replicas; j++ {
			shardDB, err := CreateDatabase(minisql.FreshDSN())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { shardDB.Close() })
			if err := shardDB.LoadFrom(bytes.NewReader(dump.Bytes())); err != nil {
				t.Fatal(err)
			}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { l.Close() })
			go shardDB.Serve(l, keys.Params())
			addrs = append(addrs, l.Addr().String())
		}
	}
	session, err := DialCluster(keys, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { session.Close() })
	return session, OpenLocal(keys, db)
}

// TestTraceFrameInvariant pins the tracing contract on a 3×2 replicated
// TCP cluster: every traced query's span tree records exactly one frame
// span per server exchange of its capture window — total and per shard —
// for both engines, both batching modes, and aggregates.
func TestTraceFrameInvariant(t *testing.T) {
	session, local := tracedCluster(t, 3, 2)
	session.SetTracing(true)

	queries := []string{"/site", "//item", "//person//city", "//bidder/date"}
	for _, opt := range []QueryOptions{{}, {Engine: Simple}, {Batch: PerCall}} {
		for _, qs := range queries {
			want, err := local.QueryWith(qs, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := session.QueryWith(qs, opt)
			if err != nil {
				t.Fatalf("%s %+v: %v", qs, opt, err)
			}
			if len(got.Pres) != len(want.Pres) {
				t.Fatalf("%s %+v: traced cluster answered %v, local %v", qs, opt, got.Pres, want.Pres)
			}
			tr := session.Trace()
			if tr == nil {
				t.Fatalf("%s %+v: tracing on but Trace() == nil", qs, opt)
			}
			checkTraceInvariant(t, tr, session.Shards(), fmt.Sprintf("%s %+v", qs, opt))
		}
	}

	// Aggregates trace through the same window.
	if _, err := session.Aggregate("//item", AggSum); err != nil {
		t.Fatal(err)
	}
	tr := session.Trace()
	if tr == nil || !strings.HasPrefix(tr.Query, "aggregate(sum)") {
		t.Fatalf("aggregate trace = %+v", tr)
	}
	checkTraceInvariant(t, tr, session.Shards(), "aggregate(sum) //item")

	// The rendered report carries the tree.
	var buf bytes.Buffer
	if err := tr.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace aggregate(sum) //item", "frame ", "server work:"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("rendered trace missing %q:\n%s", want, buf.String())
		}
	}

	// Turning tracing off stops recording without clearing the last trace.
	session.SetTracing(false)
	if _, err := session.Query("/site"); err != nil {
		t.Fatal(err)
	}
	if session.Trace() != tr {
		t.Fatal("query after SetTracing(false) replaced the last trace")
	}
}

func checkTraceInvariant(t *testing.T, tr *Trace, shards int, label string) {
	t.Helper()
	if tr.Frames() != tr.RoundTrips {
		t.Fatalf("%s: trace has %d frame spans but window saw %d round trips", label, tr.Frames(), tr.RoundTrips)
	}
	if len(tr.ShardRoundTrips) != shards {
		t.Fatalf("%s: ShardRoundTrips = %v, want %d entries", label, tr.ShardRoundTrips, shards)
	}
	perShard := map[int]int64{}
	tr.Root.ShardFrames(perShard)
	var sum int64
	for si, want := range tr.ShardRoundTrips {
		if perShard[si] != want {
			t.Fatalf("%s: shard %d has %d frame spans but %d round trips (%v vs %v)",
				label, si, perShard[si], want, perShard, tr.ShardRoundTrips)
		}
		sum += want
	}
	if sum != tr.RoundTrips {
		t.Fatalf("%s: per-shard round trips %v do not sum to %d", label, tr.ShardRoundTrips, tr.RoundTrips)
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+]?[0-9].*$`)

// TestMetricsExposition serves a runtime registry merged with a client
// cluster registry over the real HTTP mux and checks the scrape: valid
// Prometheus text, the promised metric families present (RMI totals,
// per-method latency histogram, per-tenant cache counters, breaker
// state), counters that actually moved, and a JSON twin.
func TestMetricsExposition(t *testing.T) {
	xml := randomDocXML(rand.New(rand.NewSource(78)), 300)
	doc, _ := xmldoc.ParseString(xml)
	keys, err := GenerateKeys(Params{P: 83}, doc.Names())
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDatabase(minisql.FreshDSN())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if _, err := db.EncodeXML(keys, strings.NewReader(xml)); err != nil {
		t.Fatal(err)
	}

	plan, err := db.ShardPlan(2)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	var firstReg *obs.Registry
	for i, r := range plan {
		var dump bytes.Buffer
		if err := db.DumpShard(&dump, r); err != nil {
			t.Fatal(err)
		}
		shardDB, err := CreateDatabase(minisql.FreshDSN())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { shardDB.Close() })
		if err := shardDB.LoadFrom(bytes.NewReader(dump.Bytes())); err != nil {
			t.Fatal(err)
		}
		rt := server.New(server.Config{Default: "auction"})
		// The first shard journals to a WAL so the scrape exercises the
		// durability and lease families with real (moving) values.
		tn := server.Tenant{Name: "auction", P: 83, CacheEntries: 4096}
		if i == 0 {
			tn.WALDir = t.TempDir()
		}
		if err := rt.AttachStore(tn, shardDB.st); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Shutdown)
		if i == 0 {
			firstReg = rt.Metrics()
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go rt.Serve(l)
		addrs = append(addrs, l.Addr().String())
	}

	session, err := DialCluster(keys, addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { session.Close() })
	clientReg := obs.NewRegistry()
	session.shardF.RegisterMetrics(clientReg)

	web := httptest.NewServer(obs.NewMux(firstReg, clientReg))
	t.Cleanup(web.Close)

	scrapeCalls := func() int64 {
		body := httpGet(t, web.URL+"/metrics")
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, "rmi_server_calls_total ") {
				n, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
				if err != nil {
					t.Fatalf("unparseable counter line %q: %v", line, err)
				}
				return n
			}
		}
		t.Fatal("rmi_server_calls_total missing from scrape")
		return 0
	}

	if _, err := session.Query("//item"); err != nil {
		t.Fatal(err)
	}
	// One mutation: journals a batch on shard 0 (appends, an fsync, the
	// latency histogram) and takes the writer lease (acquire counters).
	doc2, _ := xmldoc.ParseString(xml)
	if _, err := session.Insert(1, doc2.Names()[0]); err != nil {
		t.Fatalf("insert for durability metrics: %v", err)
	}
	before := scrapeCalls()
	if before == 0 {
		t.Fatal("rmi_server_calls_total still 0 after a query")
	}
	if _, err := session.Query("//person//city"); err != nil {
		t.Fatal(err)
	}
	if after := scrapeCalls(); after <= before {
		t.Fatalf("rmi_server_calls_total did not move: %d -> %d", before, after)
	}

	body := httpGet(t, web.URL+"/metrics")
	for _, want := range []string{
		"# TYPE rmi_server_calls_total counter",
		"rmi_server_bytes_in_total ",
		"rmi_server_bytes_out_total ",
		"# TYPE rmi_server_call_seconds histogram",
		`rmi_server_call_seconds_bucket{method="filter.EvalBatch",le="+Inf"}`,
		"rmi_server_call_seconds_count{",
		`encshare_tenant_cache_hits_total{tenant="auction"}`,
		`encshare_tenant_cache_misses_total{tenant="auction"}`,
		`encshare_tenant_evals_total{tenant="auction"}`,
		"encshare_tenants ",
		"# TYPE cluster_breaker_open gauge",
		`cluster_breaker_open{addr=`,
		"cluster_failovers_total 0",
		"cluster_hedges_total 0",
		`cluster_replicas{shard="0"} 1`,
		"# TYPE encshare_wal_fsync_seconds histogram",
		`encshare_wal_fsync_seconds_bucket{le="+Inf"}`,
		"encshare_wal_fsync_seconds_count",
		`encshare_wal_appends_total{tenant="auction"}`,
		`encshare_wal_fsyncs_total{tenant="auction"}`,
		`encshare_wal_fsync_failures_total{tenant="auction"} 0`,
		`encshare_wal_sticky_trips_total{tenant="auction"} 0`,
		`encshare_wal_failed{tenant="auction"} 0`,
		`encshare_lease_acquires_total{tenant="auction"}`,
		`encshare_lease_expirations_total{tenant="auction"}`,
		`encshare_pool_pages{tenant="auction"}`,
		`encshare_pool_resident{tenant="auction"}`,
		`encshare_pool_hits_total{tenant="auction"}`,
		`encshare_pool_misses_total{tenant="auction"}`,
		`encshare_pool_evictions_total{tenant="auction"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}

	// The insert really moved the durability counters on shard 0.
	walLine := regexp.MustCompile(`encshare_wal_appends_total\{tenant="auction"\} ([0-9]+)`).FindStringSubmatch(body)
	if walLine == nil || walLine[1] == "0" {
		t.Errorf("encshare_wal_appends_total did not move after the insert (%v)", walLine)
	}
	leaseLine := regexp.MustCompile(`encshare_lease_acquires_total\{tenant="auction"\} ([0-9]+)`).FindStringSubmatch(body)
	if leaseLine == nil || leaseLine[1] == "0" {
		t.Errorf("encshare_lease_acquires_total did not move after the insert (%v)", leaseLine)
	}
	// The queries read heap pages through the v2 buffer pool: the hit
	// counter must have moved, and with the table far smaller than the
	// pool nothing should have been evicted.
	poolHits := regexp.MustCompile(`encshare_pool_hits_total\{tenant="auction"\} ([0-9]+)`).FindStringSubmatch(body)
	if poolHits == nil || poolHits[1] == "0" {
		t.Errorf("encshare_pool_hits_total did not move after queries (%v)", poolHits)
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed Prometheus line %q", line)
		}
	}

	var samples []map[string]any
	if err := json.Unmarshal([]byte(httpGet(t, web.URL+"/metrics.json")), &samples); err != nil {
		t.Fatalf("metrics.json: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("metrics.json empty")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, b)
	}
	return string(b)
}

// TestStatsConcurrentWithQueries hammers every stats surface — session
// counters, server stats exchanges, registry scrapes, trace reads —
// while two sessions query the same live cluster. Its job is to fail
// under -race if any counter does a torn read or unsynchronized write.
func TestStatsConcurrentWithQueries(t *testing.T) {
	session, _ := tracedCluster(t, 2, 1)
	session2, _ := tracedCluster(t, 2, 1)
	session.SetTracing(true)

	clientReg := obs.NewRegistry()
	session.shardF.RegisterMetrics(clientReg)

	stop := make(chan struct{})
	var qwg, hwg sync.WaitGroup
	for _, s := range []*Session{session, session2} {
		qwg.Add(1)
		go func(s *Session) {
			defer qwg.Done()
			queries := []string{"/site", "//item", "//bidder/date"}
			for i := 0; i < 12; i++ {
				if _, err := s.QueryWith(queries[i%len(queries)], QueryOptions{}); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(s)
	}
	hwg.Add(1)
	go func() {
		defer hwg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			session.RoundTrips()
			session.ShardRoundTrips()
			session.Failovers()
			session.Hedges()
			if _, err := session.ServerStats(); err != nil {
				t.Errorf("ServerStats: %v", err)
				return
			}
			if tr := session.Trace(); tr != nil {
				tr.Frames()
			}
			obs.WritePrometheus(io.Discard, clientReg)
		}
	}()
	// Stop the hammer once the query goroutines finish.
	qwg.Wait()
	close(stop)
	hwg.Wait()
}
