// Session write path: planning mutations client-side.
//
// The server only ever sees opaque share blobs, so every structural
// edit is planned here, where the keys live. Division by (x − t) does
// not exist in R = F_q[x]/(x^(q−1) − 1) (the ring has zero divisors),
// so updates never "divide out" an old tag: each affected node's
// polynomial is rebuilt bottom-up from its children's reconstructed
// polynomials, and the plan ships only deltas —
//
//   - a node whose pre stays put gets delta = f_new − f_old: the PRG
//     client share is bound to the pre, so it cancels and the delta
//     applies directly to the stored server share;
//   - a node whose pre shifts (renumbering around an insert or delete)
//     keeps its polynomial but must be re-bound to the client share of
//     its new pre: delta = clientShare(oldPre) − clientShare(newPre),
//     computed without fetching anything.
//
// An ancestor's own tag is never stored in the clear; it is recovered
// algebraically: f_a = (x − t_a)·C where C is the product of the
// children's polynomials, so at any point β ∈ F_q^* with C(β) ≠ 0,
// t_a = β − f_a(β)/C(β). (Evaluation at β is a ring homomorphism only
// for β ≠ 0, since β^(q−1) = 1.)
//
// Plans are ordered so the server's (pre) primary key stays unique at
// every step: inserts shift the tail up in descending pre order before
// putting the new row, deletes remove the row before shifting the tail
// down in ascending order. Renumbering rewrites one client share per
// tail row, so an edit near the document start costs O(n) ops — the
// price of the paper's dense pre numbering, not of the sharing.
//
// One writer session per document is assumed (see internal/cluster's
// mutate.go); concurrent writers trip each other's sequence-gap checks
// — or, when one lands exactly one sequence behind, the server's
// batch-digest check (BatchMismatchError) — rather than corrupting
// anything or falsely acknowledging an unapplied batch; either error
// makes the losing writer re-plan. Local (in-process) sessions must
// also not query concurrently with a mutation — there is no RMI frame
// boundary to fence readers at; networked sessions are fenced by the
// epoch gate server-side.
package encshare

import (
	"errors"
	"fmt"
	"time"

	"encshare/internal/cluster"
	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/ring"
)

// Typed mutation errors.
var (
	// ErrDeleteRoot rejects deleting the document root.
	ErrDeleteRoot = errors.New("encshare: cannot delete the document root")
	// ErrHasChildren rejects deleting an interior node; delete leaves
	// bottom-up instead (a subtree delete is a sequence of leaf deletes).
	ErrHasChildren = errors.New("encshare: node has children; delete leaves only")
	// ErrReadOnly reports a session with no write path at all (e.g. a
	// cluster of pre-mutation servers).
	ErrReadOnly = filter.ErrMutationUnsupported
)

// Insert adds a new element named name as the LAST child of the node at
// parentPre and returns the new node's pre position. The new leaf lands
// at pre = parentPre + #descendants(parent) + 1; every later row shifts
// up by one (pre and post), and every ancestor's polynomial — the
// parent included — is multiplied by (x − map(name)).
func (s *Session) Insert(parentPre int64, name string) (int64, error) {
	t, err := s.keys.m.Value(name)
	if err != nil {
		return 0, err
	}
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	var newPre int64
	err = s.mutateWithRetry(func() ([]filter.RowOp, error) {
		ops, pre, perr := s.planInsert(parentPre, t)
		newPre = pre
		return ops, perr
	})
	if err != nil {
		return 0, err
	}
	return newPre, nil
}

// Update renames the node at pre to name. Its polynomial is rebuilt as
// (x − map(name)) times its children's product, and each ancestor's
// polynomial is rebuilt around the changed child. Numbering does not
// move.
func (s *Session) Update(pre int64, name string) error {
	t, err := s.keys.m.Value(name)
	if err != nil {
		return err
	}
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	return s.mutateWithRetry(func() ([]filter.RowOp, error) { return s.planUpdate(pre, t) })
}

// Delete removes the LEAF node at pre (ErrHasChildren otherwise; the
// root is not deletable). Every later row shifts down by one and the
// parent's polynomial is rebuilt without the deleted child's factor.
func (s *Session) Delete(pre int64) error {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	return s.mutateWithRetry(func() ([]filter.RowOp, error) { return s.planDelete(pre) })
}

// planInsert builds the op list for a new last child of parentPre with
// tag value t.
func (s *Session) planInsert(parentPre int64, t gf.Elem) (ops []filter.RowOp, newPre int64, err error) {
	r := s.keys.ring
	parent, err := s.cli.Node(parentPre)
	if err != nil {
		return nil, 0, err
	}
	desc, err := s.cli.Descendants(parentPre, parent.Post)
	if err != nil {
		return nil, 0, err
	}
	total, err := s.cli.Count()
	if err != nil {
		return nil, 0, err
	}
	pStar := parentPre + int64(len(desc)) + 1

	// Tail shift, descending so pre+1 never collides with a live row.
	// A shifted row's post also moves up (it follows the new leaf in
	// postorder); its parent pointer moves only if the parent itself
	// shifted, i.e. parent ≥ pStar — a parent always precedes its
	// children in pre order, so no unshifted row can point past pStar.
	for pre := total; pre >= pStar; pre-- {
		ops = append(ops, filter.RowOp{
			Kind: filter.OpPatch, Pre: pre, NewPre: pre + 1,
			PostDelta: 1, ParentMin: pStar, ParentDelta: 1,
			Blob: s.rebindDelta(pre, pre+1),
		})
	}

	// Ancestors, parent included: each gains the new leaf's (x − t)
	// factor, and each sits after the leaf in postorder (the leaf takes
	// the parent's old post), so post moves up by one.
	for a := parent; ; {
		fOld, rerr := s.cli.Reconstruct(a.Pre)
		if rerr != nil {
			return nil, 0, rerr
		}
		fNew := r.MulLinear(fOld, t)
		ops = append(ops, filter.RowOp{
			Kind: filter.OpPatch, Pre: a.Pre, PostDelta: 1,
			Blob: r.Bytes(r.Sub(fNew, fOld)),
		})
		if a.Parent == 0 {
			break
		}
		if a, err = s.cli.Node(a.Parent); err != nil {
			return nil, 0, err
		}
	}

	// The new leaf itself, last: its slot is free once the tail moved.
	leaf := s.scheme.Split(r.Linear(t), uint64(pStar))
	ops = append(ops, filter.RowOp{
		Kind: filter.OpPut, Pre: pStar, Post: parent.Post, Parent: parentPre,
		Blob: r.Bytes(leaf),
	})
	return ops, pStar, nil
}

// planUpdate builds the op list for renaming the node at pre to tag
// value t.
func (s *Session) planUpdate(pre int64, t gf.Elem) ([]filter.RowOp, error) {
	r := s.keys.ring
	node, err := s.cli.Node(pre)
	if err != nil {
		return nil, err
	}
	prod, _, err := s.childProducts(pre, 0, nil)
	if err != nil {
		return nil, err
	}
	fNew := r.MulLinear(prod, t)
	fOld, err := s.cli.Reconstruct(pre)
	if err != nil {
		return nil, err
	}
	ops := []filter.RowOp{{Kind: filter.OpPatch, Pre: pre, Blob: r.Bytes(r.Sub(fNew, fOld))}}
	up, err := s.rebuildUp(node.Parent, pre, fNew, 0)
	if err != nil {
		return nil, err
	}
	return append(ops, up...), nil
}

// planDelete builds the op list for removing the leaf at pre.
func (s *Session) planDelete(pre int64) ([]filter.RowOp, error) {
	r := s.keys.ring
	node, err := s.cli.Node(pre)
	if err != nil {
		return nil, err
	}
	if node.Parent == 0 {
		return nil, ErrDeleteRoot
	}
	kids, err := s.cli.Children(pre)
	if err != nil {
		return nil, err
	}
	if len(kids) > 0 {
		return nil, ErrHasChildren
	}
	total, err := s.cli.Count()
	if err != nil {
		return nil, err
	}

	// Parent rebuilt without the deleted child's factor. Its old tag is
	// recovered against the product that still includes the child.
	parent, err := s.cli.Node(node.Parent)
	if err != nil {
		return nil, err
	}
	cOld, cNew, err := s.childProducts(parent.Pre, pre, nil)
	if err != nil {
		return nil, err
	}
	fpOld, err := s.cli.Reconstruct(parent.Pre)
	if err != nil {
		return nil, err
	}
	tP, err := recoverTag(r, fpOld, cOld)
	if err != nil {
		return nil, err
	}
	fpNew := r.MulLinear(cNew, tP)

	// Row removal first (frees the slot), then the tail shift ascending
	// (pre+1 lands on the just-freed pre), then the rebuilt chain. The
	// deleted node is a leaf, so nothing can point AT it; pointers past
	// it shift down with their targets.
	ops := []filter.RowOp{{Kind: filter.OpDelete, Pre: pre}}
	for q := pre + 1; q <= total; q++ {
		ops = append(ops, filter.RowOp{
			Kind: filter.OpPatch, Pre: q, NewPre: q - 1,
			PostDelta: -1, ParentMin: pre + 1, ParentDelta: -1,
			Blob: s.rebindDelta(q, q-1),
		})
	}
	ops = append(ops, filter.RowOp{
		Kind: filter.OpPatch, Pre: parent.Pre, PostDelta: -1,
		Blob: r.Bytes(r.Sub(fpNew, fpOld)),
	})
	up, err := s.rebuildUp(parent.Parent, parent.Pre, fpNew, -1)
	if err != nil {
		return nil, err
	}
	return append(ops, up...), nil
}

// rebuildUp walks the ancestor chain from the node at `from` (0 stops
// immediately) to the root. At each step the ancestor's polynomial is
// rebuilt with the path child's polynomial replaced by childNew, its
// tag recovered algebraically from the pre-mutation state, and a patch
// with the given postDelta emitted. Reads are all pre-mutation: the
// plan is computed before any op is applied.
func (s *Session) rebuildUp(from, childPre int64, childNew ring.Poly, postDelta int64) ([]filter.RowOp, error) {
	r := s.keys.ring
	var ops []filter.RowOp
	for a := from; a != 0; {
		meta, err := s.cli.Node(a)
		if err != nil {
			return nil, err
		}
		cOld, cNew, err := s.childProducts(a, childPre, childNew)
		if err != nil {
			return nil, err
		}
		fOld, err := s.cli.Reconstruct(a)
		if err != nil {
			return nil, err
		}
		tA, err := recoverTag(r, fOld, cOld)
		if err != nil {
			return nil, err
		}
		fNew := r.MulLinear(cNew, tA)
		ops = append(ops, filter.RowOp{
			Kind: filter.OpPatch, Pre: a, PostDelta: postDelta,
			Blob: r.Bytes(r.Sub(fNew, fOld)),
		})
		childPre, childNew = a, fNew
		a = meta.Parent
	}
	return ops, nil
}

// childProducts reconstructs the children of the node at pre and
// returns the product of their polynomials twice: as stored (old), and
// with the child at replacePre substituted by replaceWith (new). A nil
// replaceWith drops that child from the new product (the delete case);
// replacePre 0 leaves both products identical.
func (s *Session) childProducts(pre, replacePre int64, replaceWith ring.Poly) (cOld, cNew ring.Poly, err error) {
	r := s.keys.ring
	kids, err := s.cli.Children(pre)
	if err != nil {
		return nil, nil, err
	}
	cOld, cNew = r.One(), r.One()
	found := false
	for _, k := range kids {
		fk, err := s.cli.Reconstruct(k.Pre)
		if err != nil {
			return nil, nil, err
		}
		cOld = r.Mul(cOld, fk)
		switch {
		case k.Pre != replacePre:
			cNew = r.Mul(cNew, fk)
		case replaceWith != nil:
			cNew = r.Mul(cNew, replaceWith)
			found = true
		default:
			found = true
		}
	}
	if replacePre != 0 && !found {
		return nil, nil, fmt.Errorf("encshare: node %d is not a child of node %d", replacePre, pre)
	}
	return cOld, cNew, nil
}

// rebindDelta re-binds an unchanged polynomial from the client share of
// oldPre to that of newPre: the stored server share s = f − c(pre)
// needs s += c(oldPre) − c(newPre). Pure client-side PRG work.
func (s *Session) rebindDelta(oldPre, newPre int64) []byte {
	r := s.keys.ring
	cOld := s.scheme.ClientShare(uint64(oldPre))
	cNew := s.scheme.ClientShare(uint64(newPre))
	return r.Bytes(r.Sub(cOld, cNew))
}

// recoverTag recovers t from f = (x − t)·c: at any β ∈ F_q^* with
// c(β) ≠ 0, t = β − f(β)/c(β). The full-product equality check guards
// against a coincidental match at the sample point; with an injective
// tag map c cannot vanish at every nonzero point (it has at most
// deg(c) < q−1 roots), so some β always works on honest data.
func recoverTag(r *ring.Ring, f, c ring.Poly) (gf.Elem, error) {
	fld := r.Field()
	for b := gf.Elem(1); b < fld.Q(); b++ {
		cb := r.Eval(c, b)
		if cb == 0 {
			continue
		}
		t := fld.Sub(b, fld.Div(r.Eval(f, b), cb))
		if r.Equal(r.MulLinear(c, t), f) {
			return t, nil
		}
	}
	return 0, errors.New("encshare: cannot recover a node's tag from its children product (shares corrupt?)")
}

// mutateWithRetry plans and applies one mutation, re-planning when the
// epoch pin or the cached sequence fell behind another writer's work.
// A stale plan is never resent — its reads predate the state it would
// apply to — so both failure modes re-run plan() against the current
// state. Caller holds s.mutMu.
//
// Networked sessions first try to take the server's writer lease for
// the attempt (acquired BEFORE planning, so the plan's reads are
// fenced): under a lease the server assigns the batch sequence, so two
// concurrent writer sessions interleave without burning retries on
// sequence-gap collisions. Everything degrades — a server without the
// lease frames, or a lease held past the wait deadline, falls back to
// the optimistic path, whose gap/digest checks remain the correctness
// backstop either way.
func (s *Session) mutateWithRetry(plan func() ([]filter.RowOp, error)) error {
	const attempts = 3
	var err error
	for i := 0; i < attempts; i++ {
		lease, release := s.acquireWriteLease()
		var ops []filter.RowOp
		if ops, err = plan(); err == nil {
			if s.testHookAfterPlan != nil {
				s.testHookAfterPlan()
			}
			err = s.applyOps(ops, lease)
		}
		release()
		switch {
		case err == nil:
			return nil
		case cluster.IsPartialMutation(err) || errors.Is(err, cluster.ErrPendingMutation):
			// The cluster committed this plan on some shards only (or
			// refused because an earlier batch is still parked): the
			// document is torn across shards, so plan reads — which span
			// shards — would see an inconsistent document. Never re-plan
			// here, even when the underlying per-shard failure is a
			// sequence gap; surface the error and let the caller repair
			// with Resync first. This case must precede the gap/mismatch
			// replan below for exactly that reason.
			return err
		case filter.IsStaleEpoch(err):
			if !s.refreshEpoch() {
				return err
			}
			s.mutSeqOK = false // the pin moved, so the cached sequence did too
		case filter.IsSeqGap(err) || filter.IsBatchMismatch(err):
			// Another writer moved the state this plan was read from (a
			// gap: the cached sequence fell behind; a mismatch: this batch
			// collided with a sequence the other writer consumed). applyOps
			// already invalidated the stale sequence; replan.
		case filter.IsLeaseExpired(err):
			// The lease lapsed (or transferred) between planning and
			// apply: another writer may have rewritten the table this plan
			// was read from. The batch was fenced before applying; drop
			// the cached sequence and replan under a fresh grant.
			s.mutSeqOK = false
		default:
			return err
		}
	}
	return err
}

// acquireWriteLease tries to take the server's writer lease for one
// mutation attempt. It returns the grant (nil when running optimistic)
// and a release func the attempt calls when done — releasing after the
// apply is a no-op for leased single-server batches (they release
// server-side at apply, overlapping the next writer with this batch's
// fsync) but hands the cluster lease back promptly. Degrades to
// (nil, no-op) — never an error — when the servers predate the lease
// frames, the lease stays held past the wait deadline, or the session
// is local. Caller holds s.mutMu.
func (s *Session) acquireWriteLease() (*filter.LeaseGrant, func()) {
	noop := func() {}
	if s.noLease || (s.remote == nil && s.shardF == nil) {
		return nil, noop
	}
	ttl := s.leaseTTL
	if ttl <= 0 {
		ttl = filter.DefaultLeaseTTL
	}
	wait := s.leaseWait
	if wait <= 0 {
		wait = 2 * ttl
	}
	// Held-lease polls are cheap — the server answers from a small
	// mutex-guarded struct without touching the apply lock — so poll
	// fast: a writer parked in a long backoff is a writer NOT staging
	// its batch into the group commit currently in flight.
	backoff := 2 * time.Millisecond
	if q := ttl / 4; q < backoff {
		backoff = q
	}
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	deadline := time.Now().Add(wait)
	for {
		var grant filter.LeaseGrant
		var err error
		if s.shardF != nil {
			grant, err = s.shardF.AcquireWriterLease(s.writerID, int64(ttl/time.Millisecond))
		} else {
			grant, err = s.remote.AcquireLease(filter.LeaseRequest{Owner: s.writerID, TTLMillis: int64(ttl / time.Millisecond)})
		}
		switch {
		case err == nil:
			if s.remote != nil {
				// The grant carries the server's write position: re-pin
				// without an extra Epoch round-trip.
				s.mutSeq = grant.LastSeq
				s.mutSeqOK = true
				s.rmiCli.SetEpoch(grant.Epoch)
			}
			g := grant
			return &g, func() {
				if s.shardF != nil {
					_ = s.shardF.ReleaseWriterLease(g.ID)
				} else {
					_ = s.remote.ReleaseLease(g.ID)
				}
			}
		case errors.Is(err, filter.ErrLeaseUnsupported):
			s.noLease = true
			return nil, noop
		case filter.IsLeaseHeld(err):
			if time.Now().After(deadline) {
				// Another writer is hogging the lease; proceed optimistic
				// — the sequence/digest checks still protect the batch.
				return nil, noop
			}
			time.Sleep(backoff)
		default:
			// Transport or server trouble; the optimistic path surfaces
			// it with better context.
			return nil, noop
		}
	}
}

// applyOps commits one planned mutation through whichever write path
// the session has. Caller holds s.mutMu.
//
// Cluster batches always carry explicit client-assigned sequences even
// under a lease — the redelivery/backlog machinery needs a sequence
// known before delivery is attempted, and a server-assigned one is only
// safe when there is exactly one authoritative server. The cluster
// lease is contention avoidance (writers take turns planning); the
// per-shard sequence and digest checks stay the backstop.
func (s *Session) applyOps(ops []filter.RowOp, lease *filter.LeaseGrant) error {
	switch {
	case s.shardF != nil:
		return s.shardF.Mutate(ops)
	case s.remote != nil:
		if lease != nil {
			return s.remoteMutateLeased(ops, lease)
		}
		return s.remoteMutate(ops)
	case s.mut != nil:
		b := filter.MutationBatch{Ver: filter.MutationBatchVersion, Seq: s.mut.LastSeq() + 1, Ops: ops}
		_, err := s.mut.Mutate(b)
		return err
	}
	return ErrReadOnly
}

// remoteMutateLeased sends one batch under the writer lease with Seq 0:
// the server assigns lastSeq+1 under the same lock that fences the
// lease, so concurrent leased writers can never collide on a sequence.
// Release is set — the server hands the lease back the moment the batch
// is applied (before its fsync completes), so the next writer plans and
// stages while this batch's fdatasync is in flight and group commit
// coalesces both.
func (s *Session) remoteMutateLeased(ops []filter.RowOp, lease *filter.LeaseGrant) error {
	lb := filter.LeasedBatch{
		LeaseID: lease.ID,
		Release: true,
		B:       filter.MutationBatch{Ver: filter.MutationBatchVersion, Ops: ops},
	}
	reply, err := s.remote.MutateLeased(lb)
	if err != nil {
		s.mutSeqOK = false // same delivery-unknown reasoning as remoteMutate
		if errors.Is(err, filter.ErrLeaseUnsupported) {
			// Raced a server downgrade; the plan is still fresh — send it
			// through the optimistic path instead of wasting the attempt.
			s.noLease = true
			return s.remoteMutate(ops)
		}
		return err
	}
	s.mutSeq = reply.LastSeq
	s.mutSeqOK = true
	s.rmiCli.SetEpoch(reply.Epoch)
	return nil
}

// remoteMutate sequences and sends one batch to a single-server
// session. The sequence is learned lazily from the server's epoch
// info; ANY error invalidates it, forcing a fresh Epoch() fetch before
// the next batch. The invalidation must not be narrowed to sequence
// gaps: the server consumes a sequence even when applying its batch
// fails (so replicas converge), and a transport error leaves delivery
// unknown — in both cases the cached sequence may already be taken,
// and reusing it would make the next batch's Seq collide with the
// consumed one, turning it into a false idempotent ack (a silently
// lost update). Surfaced errors reach mutateWithRetry, which re-plans
// — the batch was planned against a state the server no longer holds,
// so resending it would apply a stale plan.
func (s *Session) remoteMutate(ops []filter.RowOp) error {
	if !s.mutSeqOK {
		info, err := s.remote.Epoch()
		if err != nil {
			return err
		}
		s.mutSeq = info.LastSeq
		s.mutSeqOK = true
	}
	b := filter.MutationBatch{Ver: filter.MutationBatchVersion, Seq: s.mutSeq + 1, Ops: ops}
	reply, err := s.remote.Mutate(b)
	if err != nil {
		s.mutSeqOK = false
		return err
	}
	s.mutSeq = reply.LastSeq
	s.rmiCli.SetEpoch(reply.Epoch)
	return nil
}

// refreshEpoch re-pins the session to the servers' current epoch after
// a StaleEpochError and reports whether a retry is worthwhile.
func (s *Session) refreshEpoch() bool {
	switch {
	case s.shardF != nil:
		return s.shardF.RefreshEpochs() == nil
	case s.remote != nil:
		info, err := s.remote.Epoch()
		if err != nil {
			return false
		}
		s.rmiCli.SetEpoch(info.Epoch)
		return true
	}
	return false
}

// Resync reconnects restarted replicas and redelivers the mutation
// batches they missed, polling until every replica of every shard is
// caught up (and re-pinned) or the timeout expires. addrs lists the
// replica addresses to re-dial if their connections died — typically
// the same flat list the session was dialed with. Cluster sessions
// only. Resync is also the repair path after a PartialMutationError or
// ErrPendingMutation: the sync flushes any batch parked with unknown
// delivery, restoring a consistent cross-shard tiling before the next
// write.
func (s *Session) Resync(addrs []string, timeout time.Duration) error {
	if s.shardF == nil {
		return errors.New("encshare: Resync requires a cluster session")
	}
	deadline := time.Now().Add(timeout)
	for {
		for _, a := range addrs {
			_, _ = s.shardF.EnsureReplica(a) // down replicas: retried next round
		}
		pending, err := s.shardF.SyncReplicas()
		if pending == 0 {
			return err
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("encshare: %d replica(s) still out of sync after %v", pending, timeout)
			}
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}
