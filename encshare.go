// Package encshare is a from-scratch implementation of the encrypted XML
// database of Brinkman, Schoenmakers, Doumen and Jonker, "Experiments
// with Queries over Encrypted Data Using Secret Sharing" (SDM 2005).
//
// An XML document is encoded as a tree of polynomials over
// F_q[x]/(x^(q−1) − 1): every node's polynomial is (x − map(node)) times
// the product of its children's polynomials, where map is a secret
// injective assignment of tag names (and, with the trie enhancement,
// text characters) to F_q^*. Each polynomial is additively secret-shared;
// the server stores only its share in an indexed (pre, post, parent,
// poly) table, and the client keeps a PRG seed from which its share of
// any node can be regenerated. Queries run interactively: the server
// evaluates its share at the secret point, the client adds its own
// evaluation, and a zero sum reveals subtree containment — without the
// server ever learning tags, structure names, or query targets.
//
// Beyond the paper's one-exchange-per-check protocol, the engines
// default to a batched pipeline: every engine step's checks travel in a
// single length-prefixed frame and are evaluated in parallel server-side,
// so a remote query costs O(steps) round-trips instead of O(candidates) —
// predicates included, whose existence checks for the whole result
// frontier ride one shared traversal. QueryOptions.Batch selects between
// the two modes.
//
// # Quick start
//
//	keys, _ := encshare.GenerateKeys(encshare.Params{P: 83}, names)
//	db, _ := encshare.CreateDatabase("mydb")
//	db.EncodeXML(keys, xmlReader)
//	session := encshare.OpenLocal(keys, db)
//	res, _ := session.Query("/site//europe/item")
//
// See the examples directory for complete programs, DESIGN.md for the
// architecture, and EXPERIMENTS.md for the reproduction of the paper's
// evaluation.
package encshare

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"encshare/internal/cluster"
	"encshare/internal/encoder"
	"encshare/internal/engine"
	"encshare/internal/filter"
	"encshare/internal/gf"
	"encshare/internal/mapping"
	"encshare/internal/minisql"
	"encshare/internal/obs"
	"encshare/internal/prg"
	"encshare/internal/ring"
	"encshare/internal/rmi"
	"encshare/internal/secshare"
	"encshare/internal/server"
	"encshare/internal/store"
	"encshare/internal/trie"
	"encshare/internal/xpath"
)

// TrieMode re-exports the §4 text representation choice.
type TrieMode = trie.Mode

// Trie modes: TrieOff leaves text unsearchable (§3 tag-only scheme);
// TrieCompressed and TrieUncompressed enable content search (§4).
const (
	TrieOff          = trie.Off
	TrieCompressed   = trie.Compressed
	TrieUncompressed = trie.Uncompressed
)

// Params selects the algebraic setting. The paper's experiments use
// P=83, E=1 (77 XMark tag names fit in F_83^*).
type Params struct {
	// P is the field characteristic (prime). Required.
	P uint32
	// E is the extension degree; 0 or 1 means the prime field.
	E uint32
	// TrieMode controls §4 text indexing at encode time.
	TrieMode TrieMode
}

func (p Params) normalized() Params {
	if p.E == 0 {
		p.E = 1
	}
	return p
}

// Keys is the client's secret material: the PRG seed and the tag map.
// Whoever holds Keys can decrypt; the server never sees them.
type Keys struct {
	params Params
	seed   []byte
	m      *mapping.Map
	field  *gf.Field
	ring   *ring.Ring
}

// GenerateKeys creates fresh key material: a random seed plus a map
// covering the given name universe (tag names, and the text alphabet plus
// trie.Terminator when trie mode is on).
func GenerateKeys(params Params, names []string) (*Keys, error) {
	params = params.normalized()
	f, err := gf.New(params.P, params.E)
	if err != nil {
		return nil, err
	}
	r, err := ring.New(f)
	if err != nil {
		return nil, err
	}
	m, err := mapping.Generate(f, names)
	if err != nil {
		return nil, err
	}
	_, seed, err := prg.NewRandom()
	if err != nil {
		return nil, err
	}
	return &Keys{params: params, seed: seed, m: m, field: f, ring: r}, nil
}

// LoadKeys reconstructs key material from a saved seed and map file.
func LoadKeys(params Params, seed []byte, mapFile io.Reader) (*Keys, error) {
	params = params.normalized()
	if len(seed) == 0 {
		return nil, fmt.Errorf("encshare: empty seed")
	}
	f, err := gf.New(params.P, params.E)
	if err != nil {
		return nil, err
	}
	r, err := ring.New(f)
	if err != nil {
		return nil, err
	}
	m, err := mapping.Load(f, mapFile)
	if err != nil {
		return nil, err
	}
	return &Keys{params: params, seed: append([]byte(nil), seed...), m: m, field: f, ring: r}, nil
}

// Seed returns the secret seed (for persisting to a seed file).
func (k *Keys) Seed() []byte { return append([]byte(nil), k.seed...) }

// SaveMap writes the map file ("name = value" lines).
func (k *Keys) SaveMap(w io.Writer) error { return k.m.Save(w) }

// Params returns the algebraic parameters the keys were generated for.
func (k *Keys) Params() Params { return k.params }

// PolyBytes returns the per-node storage cost in bytes.
func (k *Keys) PolyBytes() int { return k.ring.PolyBytes() }

func (k *Keys) scheme() *secshare.Scheme {
	return secshare.New(k.ring, prg.New(k.seed))
}

// Database is the server-side handle: the indexed share table.
type Database struct {
	st  *store.Store
	dsn string
}

// CreateDatabase creates a fresh named database with the nodes schema on
// the default storage engine (the paged v2 engine).
func CreateDatabase(name string) (*Database, error) {
	return CreateDatabaseWith(name, "")
}

// CreateDatabaseWith is CreateDatabase with an explicit storage engine:
// "" or "v2" for the paged engine, "v1" for the minisql oracle.
func CreateDatabaseWith(name, engine string) (*Database, error) {
	eng, err := store.ParseEngine(engine)
	if err != nil {
		return nil, err
	}
	st, err := store.OpenWith(name, store.Options{Engine: eng})
	if err != nil {
		return nil, err
	}
	if err := st.Init(); err != nil {
		st.Close()
		return nil, err
	}
	return &Database{st: st, dsn: name}, nil
}

// OpenDatabase attaches to an existing named database (e.g. one
// populated by LoadFrom).
func OpenDatabase(name string) (*Database, error) {
	st, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	if err := st.Attach(); err != nil {
		st.Close()
		return nil, err
	}
	return &Database{st: st, dsn: name}, nil
}

// EncodeStats re-exports the encoder's output metrics.
type EncodeStats = encoder.Stats

// EncodeXML encodes a plaintext XML document into the database using the
// given keys — the MySQLEncode step. Requires keys whose map covers every
// tag (and character, in trie mode) in the document.
func (db *Database) EncodeXML(keys *Keys, src io.Reader) (EncodeStats, error) {
	return encoder.EncodeStream(src, encoder.Options{
		Map:      keys.m,
		Scheme:   keys.scheme(),
		TrieMode: keys.params.TrieMode,
	}, db.st)
}

// NodeCount returns the number of stored (encrypted) nodes.
func (db *Database) NodeCount() (int64, error) { return db.st.Count() }

// DumpTo persists the database to a writer (see cmd/encshare-encode).
func (db *Database) DumpTo(w io.Writer) error { return db.st.Dump(w) }

// ShardRange is one shard's contiguous, inclusive pre interval.
type ShardRange = cluster.Range

// ShardPlan cuts the database into n contiguous pre ranges of
// near-equal size — the partition DumpShard and a shard manifest are
// built from. Safe because every share row is independently uniformly
// random: a shard holding a slice learns nothing a whole-table server
// would not (see DESIGN.md).
func (db *Database) ShardPlan(n int) ([]ShardRange, error) {
	lo, hi, err := db.st.MinMaxPre()
	if err != nil {
		return nil, err
	}
	return cluster.PartitionEven(lo, hi, n)
}

// DumpShard writes the rows with pre in r to w as a standalone database
// file: encshare-server loads it exactly like a full DumpTo file and
// serves it as one cluster shard.
func (db *Database) DumpShard(w io.Writer, r ShardRange) error {
	tmp, dsn, err := db.st.CopyRange(r.Lo, r.Hi)
	if err != nil {
		return err
	}
	defer func() {
		tmp.Close()
		minisql.Drop(dsn)
	}()
	return tmp.Dump(w)
}

// LoadFrom restores a database previously written by DumpTo.
func (db *Database) LoadFrom(r io.Reader) error { return db.st.Load(r) }

// Close releases the handle and drops the in-memory data.
func (db *Database) Close() error {
	err := db.st.Close()
	minisql.Drop(db.dsn)
	return err
}

// ServeConfig tunes the server-side filter for Serve/ServeWith.
type ServeConfig struct {
	// CacheSize bounds the decoded-polynomial cache (default 4096 entries;
	// negative disables caching).
	CacheSize int
	// Workers bounds the worker pool that evaluates batch members in
	// parallel (default: number of CPUs).
	Workers int
	// WALDir, when set, journals every applied mutation batch to
	// WALDir/wal.log before it touches the table, and recovers
	// snapshot + log state on a later restart (see server.Tenant).
	// Empty means mutations are accepted but die with the process.
	WALDir string
	// Engine selects the storage engine the served table runs on
	// ("" keeps the database's current engine; "v1"/"v2" convert a
	// mismatched table before serving). See store.Engine.
	Engine string
}

// Serve exposes the database's ServerFilter over the RMI protocol until
// the listener closes, with default tuning. The params must match the
// keys used at encode time (the server needs the ring dimensions, not
// the secrets).
func (db *Database) Serve(l net.Listener, params Params) error {
	return db.ServeWith(l, params, ServeConfig{})
}

// ServeWith is Serve with explicit cache and worker-pool tuning. The
// served endpoint speaks both the per-call filter protocol and the
// batched protocol (one frame per engine step). The accept/dispatch
// loop is the multi-tenant runtime's (internal/server) hosting this
// database as its sole, unnamed tenant — a process that needs several
// tenants runs the runtime directly (see cmd/encshare-server).
func (db *Database) ServeWith(l net.Listener, params Params, cfg ServeConfig) error {
	params = params.normalized()
	st := db.st
	if cfg.Engine != "" {
		eng, err := store.ParseEngine(cfg.Engine)
		if err != nil {
			return err
		}
		if eng != st.Engine() {
			// Convert through the dump formats: either engine loads the
			// other's dump, so a v1-built file serves on v2 and vice versa.
			var buf bytes.Buffer
			if err := db.st.Dump(&buf); err != nil {
				return err
			}
			dsn := minisql.FreshDSN()
			conv, err := store.OpenWith(dsn, store.Options{Engine: eng})
			if err != nil {
				return err
			}
			defer func() {
				conv.Close()
				minisql.Drop(dsn)
			}()
			if err := conv.Load(&buf); err != nil {
				return err
			}
			st = conv
		}
	}
	rt := server.New(server.Config{})
	// Tenant.CacheEntries shares ServeConfig.CacheSize's convention
	// (0 = default, negative disables), so the raw value passes through.
	err := rt.AttachStore(server.Tenant{
		P: params.P, E: params.E,
		Workers:      cfg.Workers,
		CacheEntries: cfg.CacheSize,
		WALDir:       cfg.WALDir,
	}, st)
	if err != nil {
		return err
	}
	return rt.Serve(l)
}

// EngineKind selects the query strategy of §5.3.
type EngineKind int

const (
	// Advanced is the look-ahead engine (the paper's overall winner).
	Advanced EngineKind = iota
	// Simple is the stepwise engine.
	Simple
)

// TestKind selects the matching rule of §6.3.
type TestKind int

const (
	// TestExact uses the equality test: results are exactly the XPath
	// answer (the paper's "strict checking", its overall recommendation).
	TestExact TestKind = iota
	// TestContainment uses the cheap containment test: one evaluation per
	// check, but results may include ancestors of true matches (§6.3's
	// accuracy trade-off, Fig. 7).
	TestContainment
)

// BatchMode selects how the engines talk to the server (§5.2 protocol
// vs. the batched pipeline).
type BatchMode int

const (
	// Batched aggregates every engine step's checks into one server
	// exchange, evaluated in parallel server-side (the default). A remote
	// query costs O(steps) round-trips instead of O(candidates).
	Batched BatchMode = iota
	// PerCall issues one server exchange per check, as the paper's
	// prototype did. Kept for measurement and for old servers.
	PerCall
)

// QueryOptions tune one query execution. The zero value — advanced
// engine, exact results, batched protocol — is the recommended
// configuration.
type QueryOptions struct {
	// Engine selects the strategy (default Advanced).
	Engine EngineKind
	// Test selects the matching rule (default TestExact).
	Test TestKind
	// Batch selects the wire protocol (default Batched).
	Batch BatchMode
}

// Stats re-exports per-query work metrics.
type Stats = engine.Stats

// ServerStats re-exports the server-side work counters: share
// evaluations, decoded-polynomial cache hits/misses, and blob decodes.
type ServerStats = filter.ServerStats

// Result is a query answer: pre positions of matching nodes in document
// order, plus the work performed.
type Result struct {
	Pres  []int64
	Stats Stats
}

// Session is the client side: key material bound to a server connection
// (local, remote, or a sharded cluster).
type Session struct {
	keys        *Keys
	cli         *filter.Client
	simple      *engine.Simple
	advanced    *engine.Advanced
	simpleSeq   *engine.Simple
	advancedSeq *engine.Advanced
	rmiCli      *rmi.Client
	remote      *filter.Remote  // non-nil for single-server sessions
	shardF      *cluster.Filter // non-nil for cluster sessions
	mut         *filter.Mutable // non-nil for local sessions (in-process write path)
	scheme      *secshare.Scheme
	tenant      string
	addr        string
	closer      io.Closer

	mutMu    sync.Mutex // serializes this session's mutations
	mutSeq   uint64     // single-server write path: last acknowledged sequence
	mutSeqOK bool

	// Writer-lease state (multi-writer coordination; see mutateWithRetry).
	// All guarded by mutMu.
	writerID  string        // random owner ID presented with lease requests
	noLease   bool          // servers predate the lease frames; stay optimistic
	leaseTTL  time.Duration // 0 = filter.DefaultLeaseTTL
	leaseWait time.Duration // longest wait on a held lease; 0 = 2×TTL

	testHookAfterPlan func() // chaos tests: runs between plan and apply

	tracer    *obs.Tracer
	traceMu   sync.Mutex
	lastTrace *Trace
}

// OpenLocal starts a session against an in-process database (client and
// server roles in one process; the trust split is still enforced by the
// ServerAPI boundary).
func OpenLocal(keys *Keys, db *Database) *Session {
	mut := filter.NewMutable(filter.NewServerFilter(db.st, keys.ring, 4096), 0, nil, nil)
	s := newSession(keys, mut, nil)
	s.mut = mut
	return s
}

// Dial starts a session against a remote encshare server. The session
// speaks the batched protocol when the server supports it and falls back
// to per-call exchanges otherwise.
func Dial(keys *Keys, addr string) (*Session, error) {
	return DialWith(keys, addr, DialOptions{})
}

// DialOptions tunes a single-server session.
type DialOptions struct {
	// Tenant names the tenant to query on a multi-tenant server. Empty
	// routes to the server's default tenant (and stays wire-compatible
	// with pre-tenant servers). A named tenant is verified at dial
	// time: a server that does not host it — or predates the tenant
	// protocol — fails the dial instead of silently answering from the
	// wrong table.
	Tenant string
	// ClientWorkers bounds the client-side worker pool that evaluates
	// share streams and reconstructions per engine wave (0 = number of
	// CPUs). Results are identical for any bound; see
	// Session.SetClientWorkers.
	ClientWorkers int
}

// DialWith is Dial with explicit tenant and client tuning.
func DialWith(keys *Keys, addr string, opts DialOptions) (*Session, error) {
	cli, err := rmi.Dial(addr)
	if err != nil {
		return nil, err
	}
	if opts.Tenant != "" {
		cli.SetTenant(opts.Tenant)
		if _, err := server.ResolveTenant(cli); err != nil {
			cli.Close()
			return nil, err
		}
	}
	rem := filter.NewRemote(cli)
	s := newSession(keys, rem, cli)
	s.rmiCli = cli
	s.remote = rem
	s.tenant = opts.Tenant
	s.addr = addr
	s.SetClientWorkers(opts.ClientWorkers)
	// Best-effort epoch pin: a mutation-capable server fences this
	// session's reads from the first frame; a pre-mutation server just
	// leaves the session unpinned (the read-only behavior it had).
	if info, err := rem.Epoch(); err == nil {
		cli.SetEpoch(info.Epoch)
	}
	return s, nil
}

// ClusterOptions tunes how a cluster session routes frames over shard
// replicas.
type ClusterOptions struct {
	// Hedge enables hedged reads: a per-shard frame still unanswered
	// after the hedge delay is duplicated on a second replica of that
	// shard, first reply wins. Shares are immutable, so duplicated reads
	// are always consistent.
	Hedge bool
	// HedgeAfter fixes the hedge trigger delay; zero means adaptive (the
	// 90th percentile of the shard's recent call latencies).
	HedgeAfter time.Duration
	// TolerateUnreachable lets the dial succeed while some listed
	// servers are down, as long as the reachable ones still cover the
	// whole table — so sessions can start during a replica outage.
	TolerateUnreachable bool
	// Tenant names the tenant to query on multi-tenant servers (see
	// DialOptions.Tenant).
	Tenant string
	// ClientWorkers bounds the client-side worker pool (see
	// DialOptions.ClientWorkers).
	ClientWorkers int
}

// DialCluster starts a session against a sharded deployment: one
// encshare-server per address, each holding a contiguous pre slice of
// the encrypted node table (see Database.DumpShard). The servers are
// asked for their ranges at dial time, so no manifest travels to the
// query side; servers reporting the same range are replicas of one
// shard and form a failover group (the address list is flat — shards
// and replicas in any order). Engines and the batched pipeline run
// unchanged; every batched engine step costs at most one exchange per
// shard, issued concurrently, and a replica that dies mid-query is
// retried transparently on its siblings (see Session.Failovers). A
// server that is unreachable or reports a range that does not tile with
// the others fails the dial with an error naming it.
func DialCluster(keys *Keys, addrs []string) (*Session, error) {
	return DialClusterWith(keys, addrs, ClusterOptions{})
}

// DialClusterWith is DialCluster with explicit replica-routing options.
func DialClusterWith(keys *Keys, addrs []string, opts ClusterOptions) (*Session, error) {
	if len(addrs) == 1 {
		return DialWith(keys, addrs[0], DialOptions{Tenant: opts.Tenant, ClientWorkers: opts.ClientWorkers})
	}
	f, err := cluster.DialWith(addrs, cluster.Options{
		Hedge:               opts.Hedge,
		HedgeAfter:          opts.HedgeAfter,
		TolerateUnreachable: opts.TolerateUnreachable,
		Tenant:              opts.Tenant,
	})
	if err != nil {
		return nil, err
	}
	s := newSession(keys, f, f)
	s.shardF = f
	s.tenant = opts.Tenant
	s.SetClientWorkers(opts.ClientWorkers)
	return s, nil
}

func newSession(keys *Keys, api filter.ServerAPI, closer io.Closer) *Session {
	sch := keys.scheme()
	cli := filter.NewClient(api, sch)
	var wid [6]byte
	_, _ = rand.Read(wid[:])
	return &Session{
		keys:        keys,
		cli:         cli,
		scheme:      sch,
		writerID:    hex.EncodeToString(wid[:]),
		simple:      engine.NewSimple(cli, keys.m),
		advanced:    engine.NewAdvanced(cli, keys.m),
		simpleSeq:   engine.NewSimpleSequential(cli, keys.m),
		advancedSeq: engine.NewAdvancedSequential(cli, keys.m),
		closer:      closer,
	}
}

// RoundTrips returns the number of server exchanges this session has
// issued (0 for local sessions, which do not cross a network boundary).
// For cluster sessions this aggregates the per-shard counters of every
// shard connection. Comparing the delta across a query run under
// Batched vs PerCall shows the round-trip reduction directly.
func (s *Session) RoundTrips() int64 {
	if s.shardF != nil {
		return s.shardF.RoundTrips()
	}
	if s.rmiCli == nil {
		return 0
	}
	return s.rmiCli.Stats().Calls
}

// ShardRoundTrips returns the per-shard exchange counters of a cluster
// session, in shard (pre-range) order; nil for non-cluster sessions.
func (s *Session) ShardRoundTrips() []int64 {
	if s.shardF == nil {
		return nil
	}
	return s.shardF.ShardRoundTrips()
}

// Shards returns the number of shards behind this session (0 for local
// and single-server sessions).
func (s *Session) Shards() int {
	if s.shardF == nil {
		return 0
	}
	return s.shardF.Shards()
}

// Replicas returns the per-shard replica counts of a cluster session,
// in shard order; nil for non-cluster sessions.
func (s *Session) Replicas() []int {
	if s.shardF == nil {
		return nil
	}
	return s.shardF.Replicas()
}

// Tenant returns the tenant this session was dialed for ("" for local
// sessions and for sessions on a server's default tenant).
func (s *Session) Tenant() string { return s.tenant }

// SetClientWorkers bounds the client-side worker pool that runs each
// engine wave's PRG share streams and reconstructions in parallel
// (n < 1 restores the default, the number of CPUs). Any bound computes
// byte-identical results — with one worker the pool degenerates to the
// sequential loop — so this is purely a resource knob for multi-core
// clients.
func (s *Session) SetClientWorkers(n int) {
	s.cli.SetWorkers(n)
}

// AddReplica joins a freshly provisioned server to this live cluster
// session: the server is dialed (under the session's tenant, if any),
// asked for its pre range, and added to the shard group holding exactly
// that range — from then on it serves a round-robin share of that
// shard's frames, no redial needed. Returns the shard index joined.
// Fails for local and single-server sessions, and for servers whose
// range matches no existing shard group (only byte-identical replicas
// can join live; re-sharding is a different operation).
func (s *Session) AddReplica(addr string) (int, error) {
	if s.shardF == nil {
		return 0, fmt.Errorf("encshare: AddReplica requires a cluster session (DialCluster)")
	}
	return s.shardF.AddReplica(addr)
}

// Failovers returns how many per-shard frames this cluster session
// retried on another replica after a transport failure — zero during
// healthy operation, and still zero client-visible errors when a
// replica dies mid-query.
func (s *Session) Failovers() int64 {
	if s.shardF == nil {
		return 0
	}
	return s.shardF.Failovers()
}

// Hedges returns how many hedged duplicate frames this cluster session
// fired (see ClusterOptions.Hedge).
func (s *Session) Hedges() int64 {
	if s.shardF == nil {
		return 0
	}
	return s.shardF.Hedges()
}

// ServerStats returns the server-side work counters behind this
// session: evaluations, decoded-polynomial cache hits/misses, and blob
// decodes. Local sessions read the in-process filter directly; remote
// sessions fetch the counters in one exchange (zeros from servers that
// predate the method); cluster sessions aggregate every reachable
// replica. Comparing CacheHits against Decodes shows directly what the
// decoded-polynomial cache saves.
func (s *Session) ServerStats() (ServerStats, error) {
	return s.cli.ServerStats()
}

// Span re-exports one node of a trace tree (see Trace.Root).
type Span = obs.Span

// Trace is one traced query's record: the span tree plus the counter
// deltas of its capture window. The window opens after the
// before-stats fetch and closes before the after-stats fetch, so the
// tree's frame count equals exactly the RoundTrips delta — the
// invariant TestTraceFrameInvariant pins.
type Trace struct {
	// Query is the query (or aggregate) string traced.
	Query string
	// Root is the span tree: a query span, one step/wave span per engine
	// round, frame spans per shard exchange, event spans for
	// failovers/hedges.
	Root *Span
	// RoundTrips is how many server exchanges the window issued;
	// ShardRoundTrips splits them per shard (nil off-cluster).
	RoundTrips      int64
	ShardRoundTrips []int64
	// Failovers/Hedges are the window's replica-routing deltas.
	Failovers int64
	Hedges    int64
	// Server is the server-side work delta (evals, cache traffic,
	// decodes, aggregates) attributed to the window — best-effort, from
	// stats exchanges bracketing it.
	Server ServerStats
}

// Frames returns the number of frame spans recorded — equal to
// RoundTrips by construction.
func (t *Trace) Frames() int64 { return t.Root.Frames() }

// Render writes the trace as an indented timing report.
func (t *Trace) Render(w io.Writer) error {
	fmt.Fprintf(w, "trace %s: %d frames", t.Query, t.Frames())
	if len(t.ShardRoundTrips) > 0 {
		fmt.Fprintf(w, " over %d shards %v", len(t.ShardRoundTrips), t.ShardRoundTrips)
	}
	if t.Failovers > 0 || t.Hedges > 0 {
		fmt.Fprintf(w, ", %d failovers, %d hedges", t.Failovers, t.Hedges)
	}
	fmt.Fprintf(w, "\nserver work: %d evals, %d cache hits, %d misses, %d decodes, %d aggregates\n",
		t.Server.Evals, t.Server.CacheHits, t.Server.CacheMisses, t.Server.Decodes, t.Server.Aggregates)
	return t.Root.Fprint(w)
}

// SetTracing turns per-query tracing on or off for this session. While
// on, every Query/Aggregate call captures a span tree readable via
// Trace() right after the call. Tracing adds two stats exchanges per
// query (the before/after server-work bracket) plus the trace context
// on each frame, so it is a debugging mode, not an always-on default —
// the metrics registry is the zero-per-query-cost counterpart.
func (s *Session) SetTracing(on bool) {
	if !on {
		if s.tracer != nil {
			s.cli.SetTracer(nil)
			if s.shardF != nil {
				s.shardF.SetTracer(nil)
			}
			if s.remote != nil {
				s.remote.SetTracer(nil, 0, "")
			}
			s.tracer = nil
		}
		return
	}
	if s.tracer != nil {
		return
	}
	tr := obs.NewTracer()
	s.tracer = tr
	s.cli.SetTracer(tr)
	if s.shardF != nil {
		s.shardF.SetTracer(tr)
	}
	if s.remote != nil {
		s.remote.SetTracer(tr, 0, s.addr)
	}
}

// Trace returns the last completed query's trace, or nil when tracing
// is off (or no traced query ran yet).
func (s *Session) Trace() *Trace {
	s.traceMu.Lock()
	defer s.traceMu.Unlock()
	return s.lastTrace
}

// beginTrace opens a capture window for one query and returns the
// closure that seals it. The stats exchanges bracket the window from
// the OUTSIDE — fetched before Begin and after End — which is what
// keeps the frame-count == RoundTrips-delta invariant exact.
func (s *Session) beginTrace(label string) func() {
	if s.tracer == nil {
		return func() {}
	}
	statsBefore, _ := s.ServerStats()
	rtBefore := s.RoundTrips()
	shardBefore := append([]int64(nil), s.ShardRoundTrips()...)
	failBefore, hedgeBefore := s.Failovers(), s.Hedges()
	s.tracer.Begin(label)
	return func() {
		s.tracer.End()
		rtAfter := s.RoundTrips()
		shardAfter := s.ShardRoundTrips()
		fail, hedge := s.Failovers()-failBefore, s.Hedges()-hedgeBefore
		statsAfter, _ := s.ServerStats()
		tr := &Trace{
			Query:      label,
			Root:       s.tracer.Root(),
			RoundTrips: rtAfter - rtBefore,
			Failovers:  fail,
			Hedges:     hedge,
			Server:     statsAfter.Sub(statsBefore),
		}
		if len(shardAfter) == len(shardBefore) && len(shardAfter) > 0 {
			tr.ShardRoundTrips = make([]int64, len(shardAfter))
			for i := range shardAfter {
				tr.ShardRoundTrips[i] = shardAfter[i] - shardBefore[i]
			}
		}
		s.traceMu.Lock()
		s.lastTrace = tr
		s.traceMu.Unlock()
	}
}

// Query parses and runs an XPath-subset query with default options.
func (s *Session) Query(q string) (Result, error) {
	return s.QueryWith(q, QueryOptions{})
}

// QueryWith parses and runs a query with explicit options.
func (s *Session) QueryWith(q string, opts QueryOptions) (Result, error) {
	parsed, err := xpath.Parse(q)
	if err != nil {
		return Result{}, err
	}
	// A stale-epoch fence means the session's pin fell behind a
	// mutation: re-pin to the servers' current epoch and rerun against
	// the new state. Bounded retries, because a busy enough writer can
	// outrun each rerun.
	const staleRetries = 4
	var res engine.Result
	for attempt := 0; ; attempt++ {
		endTrace := s.beginTrace(q)
		res, err = s.runQuery(parsed, opts)
		endTrace()
		if err == nil || attempt == staleRetries || !filter.IsStaleEpoch(err) || !s.refreshEpoch() {
			break
		}
	}
	if err != nil {
		return Result{}, err
	}
	return Result{Pres: res.Pres, Stats: res.Stats}, nil
}

// runQuery executes a parsed query on the engine variant opts selects.
func (s *Session) runQuery(parsed *xpath.Query, opts QueryOptions) (engine.Result, error) {
	var eng engine.Engine = s.advanced
	switch {
	case opts.Engine == Simple && opts.Batch == PerCall:
		eng = s.simpleSeq
	case opts.Engine == Simple:
		eng = s.simple
	case opts.Batch == PerCall:
		eng = s.advancedSeq
	}
	test := engine.Equality
	if opts.Test == TestContainment {
		test = engine.Containment
	}
	return eng.Run(parsed, test)
}

// AggKind re-exports the aggregate selector (AggCount / AggSum / AggAvg).
type AggKind = filter.AggKind

// Aggregate kinds: COUNT is the exact matching-row count, SUM the
// coefficient-wise sum of the matching node polynomials over F_q, and
// AVG the SUM scaled by the inverse of COUNT mod q (derived client-side;
// undefined when q divides the count).
const (
	AggCount = filter.AggCount
	AggSum   = filter.AggSum
	AggAvg   = filter.AggAvg
)

// IntegrityError re-exports the typed verification failure an aggregate
// raises when a shard's folded reply contradicts the client's checks.
type IntegrityError = filter.IntegrityError

// AggregateOptions tunes one aggregate execution.
type AggregateOptions struct {
	// Query tunes the filtering phase (engine, test, wire mode).
	Query QueryOptions
	// NoVerify skips the verification share: no mask travels with the
	// fold frames and the known-root check does not run.
	NoVerify bool
	// ChunkRows bounds the server-side fold chunk (0 means q−1, the
	// maximum wraparound-safe window).
	ChunkRows int
}

// AggregateResult is an aggregate answer plus how it was computed.
type AggregateResult struct {
	Kind AggKind
	// Pres are the matching rows the aggregate folded, in document
	// order (the filtering phase's answer).
	Pres []int64
	// Count is the exact number of matching rows (every kind).
	Count int64
	// Sum is the coefficient vector of Σ f_p over the matching rows
	// (nil for AggCount).
	Sum []uint32
	// Avg is the coefficient vector of Sum · (Count mod q)⁻¹ (AggAvg
	// only).
	Avg []uint32
	// Stats covers both phases: the query's work plus the aggregation
	// phase's folds/decodes/reconstructions.
	Stats Stats
	// Verified reports that the verification share traveled and every
	// chunk passed its checks.
	Verified bool
	// Downgraded reports that the server predates aggregate frames and
	// the client reconstructed every matching row instead — correct but
	// O(rows) bytes, with the extra exchanges visible in RoundTrips.
	Downgraded bool
}

// Aggregate runs query q and folds the matching rows into the requested
// aggregate with default options. Against servers speaking the
// aggregate frames the fold costs O(chunks) bytes per shard instead of
// shipping every matching row; a verification share guards the folded
// values (see AggregateWith and DESIGN.md "Aggregation & verification").
func (s *Session) Aggregate(q string, kind AggKind) (AggregateResult, error) {
	return s.AggregateWith(q, kind, AggregateOptions{})
}

// AggregateWith is Aggregate with explicit options.
func (s *Session) AggregateWith(q string, kind AggKind, opts AggregateOptions) (AggregateResult, error) {
	parsed, err := xpath.Parse(q)
	if err != nil {
		return AggregateResult{}, err
	}
	endTrace := s.beginTrace(fmt.Sprintf("aggregate(%s) %s", kind, q))
	defer endTrace()
	res, err := s.runQuery(parsed, opts.Query)
	if err != nil {
		return AggregateResult{}, err
	}
	fopts := filter.AggregateOptions{NoVerify: opts.NoVerify, ChunkRows: opts.ChunkRows}
	if !opts.NoVerify {
		// Known-root check point: every matching row's polynomial has
		// the query's last name as a root. A wildcard/parent last step
		// (or an unmappable name, which yields no rows anyway) gives the
		// verification no fixed root, so only the count checks run.
		if last := parsed.Steps[len(parsed.Steps)-1]; last.IsNameTest() {
			if v, verr := s.keys.m.Value(last.Name); verr == nil {
				fopts.CheckPoint = v
			}
		}
	}
	before := s.cli.Counters.Snapshot()
	start := time.Now()
	agg, err := s.cli.AggregateFold(res.Pres, kind, fopts)
	if err != nil {
		return AggregateResult{}, err
	}
	d := s.cli.Counters.Snapshot().Sub(before)
	stats := res.Stats
	stats.Folds += d.Folds
	stats.Decodes += d.Decodes
	stats.Reconstructions += d.Reconstructions
	stats.NodesFetched += d.NodesFetched
	stats.Elapsed += time.Since(start)
	return AggregateResult{
		Kind:       kind,
		Pres:       res.Pres,
		Count:      agg.Count,
		Sum:        agg.Sum,
		Avg:        agg.Avg,
		Stats:      stats,
		Verified:   agg.Verified,
		Downgraded: !agg.Folded,
	}, nil
}

// Close closes the underlying connection for remote sessions (no-op for
// local ones).
func (s *Session) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// ContentNames builds the name universe for trie-enabled keys from tag
// names plus the alphabet of a text corpus (§4): call it with everything
// the documents may contain.
func ContentNames(tagNames []string, corpus string) []string {
	return append(append([]string{}, tagNames...), trie.Alphabet(trie.Words(corpus))...)
}
